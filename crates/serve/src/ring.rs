//! SPSC handoff rings: the acceptor → shard channel for new connections.
//!
//! One producer (the accept loop) and one consumer (a shard event loop)
//! share a fixed ring of slots. Head and tail are atomics, so the
//! steady-state hot path is wait-free coordination plus one uncontended
//! per-slot lock (`unsafe` is reserved for the reactor's FFI shim, so
//! the slot itself is a `Mutex<Option<T>>` rather than an
//! `UnsafeCell` — the lock is only ever taken by the one producer or the
//! one consumer, and never blocks). A full ring fails the push back to
//! the producer, which round-robins the connection to the next shard —
//! handoff pressure load-balances instead of queueing unboundedly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A bounded single-producer single-consumer handoff ring.
#[derive(Debug)]
pub struct HandoffRing<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Next slot the producer writes (monotone; slot = index % capacity).
    tail: AtomicUsize,
    /// Next slot the consumer reads (monotone).
    head: AtomicUsize,
}

impl<T> HandoffRing<T> {
    /// A ring holding at most `capacity` in-flight items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Producer side: hands `item` to the consumer, or returns it when
    /// the ring is full.
    ///
    /// # Errors
    /// The item itself, when the consumer is `capacity` items behind.
    ///
    /// # Panics
    /// Panics if a slot lock is poisoned.
    pub fn push(&self, item: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(item);
        }
        *self.slots[tail % self.slots.len()]
            .lock()
            .expect("ring slot") = Some(item);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: the next handed-off item, if any.
    ///
    /// # Panics
    /// Panics if a slot lock is poisoned.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = self.slots[head % self.slots.len()]
            .lock()
            .expect("ring slot")
            .take();
        self.head.store(head.wrapping_add(1), Ordering::Release);
        item
    }

    /// Items currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trips_in_order() {
        let ring = HandoffRing::new(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.push(99), Err(99), "full ring hands the item back");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        // Wrap-around reuses slots.
        for round in 0..10 {
            ring.push(round).unwrap();
            assert_eq!(ring.pop(), Some(round));
        }
    }

    #[test]
    fn spsc_threads_transfer_every_item() {
        let ring = Arc::new(HandoffRing::new(8));
        let producer_ring = Arc::clone(&ring);
        const N: usize = 10_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut item = i;
                loop {
                    match producer_ring.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = Vec::with_capacity(N);
        while got.len() < N {
            match ring.pop() {
                Some(v) => got.push(v),
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "in order, none lost");
        assert!(ring.is_empty());
    }
}

//! Readiness-based I/O for the shard event loops: a minimal `poll(2)`
//! wrapper with a self-pipe wakeup, plus the `RLIMIT_NOFILE` helpers the
//! high-concurrency harness needs for its fd preflight.
//!
//! The workspace is offline and `libc`-free, so on Linux the four
//! syscalls this module needs (`poll`, `pipe`, `fcntl`, `get/setrlimit`)
//! are declared directly in a small FFI shim — the only `unsafe` code in
//! the crate, confined to this module. Everywhere else a portable
//! fallback applies: sockets are still driven non-blocking
//! (`TcpStream::set_nonblocking`), but [`Poller::wait`] degrades to a
//! short condvar-timed sleep that reports every registered source as
//! possibly-ready, and the [`Waker`] interrupts the sleep instead of
//! writing to a pipe. Spurious readiness is part of the contract either
//! way (`poll(2)` itself permits it): callers must treat "readable" as
//! "try a non-blocking read", never as a guarantee.
//!
//! Why `poll(2)` and not `epoll`: the per-shard connection sets are
//! rebuilt-rarely, iterated-wholesale, and the shim stays at one
//! syscall + one `#[repr(C)]` struct. At 10k+ connections per *shard*
//! the O(fds) scan would start to matter; connections are spread across
//! shards precisely so it does not.

#![allow(unsafe_code)] // the FFI shim below; nothing else in the crate.

/// A raw file descriptor, aliased so non-unix builds still typecheck
/// (the fallback poller never dereferences it).
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// A raw file descriptor (non-unix stand-in).
#[cfg(not(unix))]
pub type RawFd = i32;

/// The raw fd of a TCP stream (fallback: a dummy the poller ignores).
#[must_use]
pub fn stream_fd(stream: &std::net::TcpStream) -> RawFd {
    #[cfg(unix)]
    {
        std::os::unix::io::AsRawFd::as_raw_fd(stream)
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        -1
    }
}

/// The raw fd of a TCP listener (fallback: a dummy the poller ignores).
#[must_use]
pub fn listener_fd(listener: &std::net::TcpListener) -> RawFd {
    #[cfg(unix)]
    {
        std::os::unix::io::AsRawFd::as_raw_fd(listener)
    }
    #[cfg(not(unix))]
    {
        let _ = listener;
        -1
    }
}

/// What a registered source wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interest {
    /// Readability only (the steady state of an idle connection).
    Read,
    /// Readability and writability (a partially-flushed response).
    ReadWrite,
}

impl Interest {
    fn wants_write(self) -> bool {
        matches!(self, Self::ReadWrite)
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the source was registered under.
    pub token: usize,
    /// The source may be readable (or at EOF — read to find out).
    pub readable: bool,
    /// The source may accept writes.
    pub writable: bool,
    /// The peer hung up or the fd errored; the source should be closed
    /// after draining whatever still reads.
    pub closed: bool,
}

#[derive(Clone, Copy, Debug)]
struct Registration {
    fd: RawFd,
    token: usize,
    interest: Interest,
}

#[cfg(target_os = "linux")]
mod sys {
    //! The Linux FFI shim: `poll(2)`, a non-blocking self-pipe, and the
    //! rlimit pair. Constants are the x86-64/aarch64 Linux values.

    use std::os::raw::{c_int, c_short, c_ulong, c_void};

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0o4000;
    pub const RLIMIT_NOFILE: c_int = 7;

    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[repr(C)]
    pub struct RLimit {
        pub cur: c_ulong,
        pub max: c_ulong,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    /// `poll(2)` over `fds`; retries on `EINTR`. Returns the number of
    /// fds with events.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> std::io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid mutable slice of `#[repr(C)]`
            // pollfd-layout structs; the kernel writes only `revents`.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// A pipe with both ends non-blocking: `(read_fd, write_fd)`.
    pub fn nonblocking_pipe() -> std::io::Result<(c_int, c_int)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid 2-element c_int array.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        for fd in fds {
            // SAFETY: plain fcntl flag manipulation on fds we just made.
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } != 0 {
                let err = std::io::Error::last_os_error();
                close_fd(fds[0]);
                close_fd(fds[1]);
                return Err(err);
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// Writes one byte (a wakeup token); a full pipe is success — the
    /// reader is already pending a wakeup.
    pub fn write_byte(fd: c_int) {
        let byte = [1u8];
        // SAFETY: valid 1-byte buffer; EAGAIN/EPIPE are ignored by design.
        let _ = unsafe { write(fd, byte.as_ptr().cast(), 1) };
    }

    /// Drains every pending wakeup byte.
    pub fn drain_pipe(fd: c_int) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: valid buffer; the fd is the non-blocking pipe read
            // end, so this returns -1/EAGAIN when empty.
            let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 || (n as usize) < buf.len() {
                return;
            }
        }
    }

    /// Closes an fd, ignoring errors (used on teardown paths only).
    pub fn close_fd(fd: c_int) {
        // SAFETY: closing an owned fd; double-close is prevented by the
        // owning types' Drop running once.
        let _ = unsafe { close(fd) };
    }

    /// The `RLIMIT_NOFILE` soft and hard limits.
    pub fn nofile_limits() -> std::io::Result<(u64, u64)> {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: valid pointer to an RLimit the kernel fills in.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok((lim.cur, lim.max))
    }

    /// Raises the `RLIMIT_NOFILE` soft limit to `want` (≤ hard limit).
    pub fn raise_nofile(want: u64, hard: u64) -> std::io::Result<()> {
        let lim = RLimit {
            cur: want as c_ulong,
            max: hard as c_ulong,
        };
        // SAFETY: valid pointer to a fully-initialized RLimit.
        if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }
}

/// The soft and hard `RLIMIT_NOFILE` limits, when the platform exposes
/// them (`None` on the portable fallback — no preflight possible).
#[must_use]
pub fn fd_limits() -> Option<(u64, u64)> {
    #[cfg(target_os = "linux")]
    {
        sys::nofile_limits().ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Ensures at least `need` file descriptors are available, raising the
/// soft `RLIMIT_NOFILE` toward the hard limit when necessary.
///
/// # Errors
/// A human-readable message when the hard limit itself is too low (the
/// caller should surface it and exit) or the raise syscall fails.
pub fn ensure_fd_limit(need: u64) -> Result<(), String> {
    let Some((soft, hard)) = fd_limits() else {
        return Ok(()); // Fallback platform: nothing to check.
    };
    if soft >= need {
        return Ok(());
    }
    if hard < need {
        return Err(format!(
            "need {need} file descriptors but the hard RLIMIT_NOFILE is {hard} \
             (soft {soft}); raise it (e.g. `ulimit -Hn`) or lower --connections"
        ));
    }
    #[cfg(target_os = "linux")]
    {
        sys::raise_nofile(need, hard)
            .map_err(|e| format!("raising RLIMIT_NOFILE {soft} -> {need} failed: {e}"))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(())
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! Linux poller: one `poll(2)` call per wait over the registered set
    //! plus the self-pipe read end in slot 0.

    use super::{sys, Event, Registration};
    use std::io;
    use std::sync::Arc;
    use std::time::Duration;

    #[derive(Debug)]
    struct PipeOwner(i32);

    impl Drop for PipeOwner {
        fn drop(&mut self) {
            sys::close_fd(self.0);
        }
    }

    /// Wakes a [`Poller`] blocked in `wait` from any thread.
    #[derive(Clone, Debug)]
    pub struct Waker {
        write_end: Arc<PipeOwner>,
    }

    impl Waker {
        /// Interrupts the poller (one byte down the self-pipe).
        pub fn wake(&self) {
            sys::write_byte(self.write_end.0);
        }
    }

    /// A registered set of fds and the `poll(2)` loop over them.
    #[derive(Debug)]
    pub struct Poller {
        read_end: PipeOwner,
        registrations: Vec<Registration>,
        pollfds: Vec<sys::PollFd>,
        dirty: bool,
    }

    impl Poller {
        /// A poller and the waker that can interrupt it.
        ///
        /// # Errors
        /// When the self-pipe cannot be created.
        pub fn new() -> io::Result<(Self, Waker)> {
            let (r, w) = sys::nonblocking_pipe()?;
            Ok((
                Self {
                    read_end: PipeOwner(r),
                    registrations: Vec::new(),
                    pollfds: Vec::new(),
                    dirty: true,
                },
                Waker {
                    write_end: Arc::new(PipeOwner(w)),
                },
            ))
        }

        pub(super) fn set(&mut self, reg: Registration) {
            match self.registrations.iter_mut().find(|r| r.token == reg.token) {
                Some(r) => *r = reg,
                None => self.registrations.push(reg),
            }
            self.dirty = true;
        }

        pub(super) fn remove(&mut self, token: usize) {
            self.registrations.retain(|r| r.token != token);
            self.dirty = true;
        }

        /// Blocks until a registered source is ready, the waker fires,
        /// or `timeout` elapses; appends events to `events`.
        ///
        /// # Errors
        /// When `poll(2)` itself fails (never for `EINTR`, which retries).
        pub fn wait(
            &mut self,
            timeout: Option<Duration>,
            events: &mut Vec<Event>,
        ) -> io::Result<()> {
            if self.dirty {
                self.pollfds.clear();
                self.pollfds.push(sys::PollFd {
                    fd: self.read_end.0,
                    events: sys::POLLIN,
                    revents: 0,
                });
                for r in &self.registrations {
                    let mut ev = sys::POLLIN;
                    if r.interest.wants_write() {
                        ev |= sys::POLLOUT;
                    }
                    self.pollfds.push(sys::PollFd {
                        fd: r.fd,
                        events: ev,
                        revents: 0,
                    });
                }
                self.dirty = false;
            } else {
                for p in &mut self.pollfds {
                    p.revents = 0;
                }
            }
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
            };
            let n = sys::poll_fds(&mut self.pollfds, timeout_ms)?;
            if n == 0 {
                return Ok(());
            }
            if self.pollfds[0].revents != 0 {
                sys::drain_pipe(self.read_end.0);
            }
            for (p, r) in self.pollfds[1..].iter().zip(&self.registrations) {
                if p.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token: r.token,
                    readable: p.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                    writable: p.revents & sys::POLLOUT != 0,
                    closed: p.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Portable fallback: no readiness syscall, so `wait` is a short
    //! condvar-timed sleep (interruptible by the waker) after which every
    //! registered source is reported possibly-ready. Callers drive their
    //! sockets non-blocking, so a spurious "readable" costs one
    //! `WouldBlock` read — correct, just not zero-CPU-idle.

    use super::{Event, Interest, Registration};
    use std::io;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    const FALLBACK_TICK: Duration = Duration::from_millis(2);

    #[derive(Debug, Default)]
    struct Signal {
        pending: Mutex<bool>,
        cond: Condvar,
    }

    /// Wakes a [`Poller`] blocked in `wait` from any thread.
    #[derive(Clone, Debug)]
    pub struct Waker {
        signal: Arc<Signal>,
    }

    impl Waker {
        /// Interrupts the poller.
        pub fn wake(&self) {
            *self.signal.pending.lock().expect("waker lock") = true;
            self.signal.cond.notify_all();
        }
    }

    /// The fallback registered set.
    #[derive(Debug)]
    pub struct Poller {
        signal: Arc<Signal>,
        registrations: Vec<Registration>,
    }

    impl Poller {
        /// A poller and the waker that can interrupt it.
        ///
        /// # Errors
        /// Never fails on the fallback.
        pub fn new() -> io::Result<(Self, Waker)> {
            let signal = Arc::new(Signal::default());
            Ok((
                Self {
                    signal: Arc::clone(&signal),
                    registrations: Vec::new(),
                },
                Waker { signal },
            ))
        }

        pub(super) fn set(&mut self, reg: Registration) {
            match self.registrations.iter_mut().find(|r| r.token == reg.token) {
                Some(r) => *r = reg,
                None => self.registrations.push(reg),
            }
        }

        pub(super) fn remove(&mut self, token: usize) {
            self.registrations.retain(|r| r.token != token);
        }

        /// Sleeps briefly (or until woken), then reports every
        /// registered source as possibly-ready.
        ///
        /// # Errors
        /// Never fails on the fallback.
        pub fn wait(
            &mut self,
            timeout: Option<Duration>,
            events: &mut Vec<Event>,
        ) -> io::Result<()> {
            let nap = timeout.unwrap_or(FALLBACK_TICK).min(FALLBACK_TICK);
            {
                let mut pending = self.signal.pending.lock().expect("waker lock");
                if !*pending && !nap.is_zero() {
                    let (guard, _) = self
                        .signal
                        .cond
                        .wait_timeout(pending, nap)
                        .expect("waker lock");
                    pending = guard;
                }
                *pending = false;
            }
            for r in &self.registrations {
                events.push(Event {
                    token: r.token,
                    readable: true,
                    writable: r.interest.wants_write(),
                    closed: false,
                });
            }
            Ok(())
        }
    }
}

pub use imp::{Poller, Waker};

impl Poller {
    /// Registers (or updates) a source under `token`.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) {
        self.set(Registration {
            fd,
            token,
            interest,
        });
    }

    /// Removes the source registered under `token`, if any.
    pub fn deregister(&mut self, token: usize) {
        self.remove(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let (mut poller, waker) = Poller::new().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_secs(10)), &mut events)
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wake must interrupt the wait long before the timeout"
        );
        t.join().unwrap();
    }

    #[test]
    fn timeout_bounds_an_unwoken_wait() {
        let (mut poller, _waker) = Poller::new().unwrap();
        let start = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(20)), &mut events)
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn readable_socket_reports_an_event() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let (mut poller, _waker) = Poller::new().unwrap();
        poller.register(stream_fd(&server), 7, Interest::Read);
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();

        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = None;
        while Instant::now() < deadline {
            events.clear();
            poller
                .wait(Some(Duration::from_millis(100)), &mut events)
                .unwrap();
            if let Some(ev) = events.iter().find(|e| e.token == 7 && e.readable) {
                got = Some(*ev);
                break;
            }
        }
        let ev = got.expect("socket with pending bytes must report readable");
        assert_eq!(ev.token, 7);
        let mut buf = [0u8; 8];
        let mut server = server;
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn deregistered_sources_stop_reporting() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let (mut poller, _waker) = Poller::new().unwrap();
        poller.register(stream_fd(&server), 3, Interest::ReadWrite);
        poller.deregister(3);
        client.write_all(b"x").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(20)), &mut events)
            .unwrap();
        assert!(
            events.iter().all(|e| e.token != 3),
            "deregistered token must not appear: {events:?}"
        );
    }

    #[test]
    fn fd_limit_preflight_is_satisfiable_for_small_needs() {
        // 64 fds is below any sane default soft limit; the preflight must
        // succeed without raising anything.
        ensure_fd_limit(64).expect("64 fds must always be available");
        // An absurd requirement gives a clear error on platforms that
        // expose limits (and Ok on the fallback).
        if let Some((_, hard)) = fd_limits() {
            let msg = ensure_fd_limit(hard + 1).expect_err("past the hard limit");
            assert!(msg.contains("RLIMIT_NOFILE"), "{msg}");
        }
    }
}

//! Admission control: the bounded queue between request intake and the
//! worker pool, plus the server lifecycle it enforces.
//!
//! The contract (and the overload test's assertions):
//!
//! * The queue is **bounded**. A push against a full queue fails
//!   *synchronously* — the caller turns that into a typed `overloaded`
//!   response. Nothing ever blocks on admission, so intake threads stay
//!   responsive no matter how far behind the workers are.
//! * Lifecycle is monotone: `Running → Draining → Stopped`. Draining
//!   rejects new work (typed `draining`) but **every job already admitted
//!   is still answered** — workers keep popping until the queue is empty,
//!   then observe `Draining` and exit. That invariant is what makes the
//!   caller's blocking wait on a [`ResponseSlot`] safe: an admitted job's
//!   slot is always filled, by execution or by a deadline rejection.
//! * Deadlines are checked at *pop* time against the enqueue timestamp:
//!   a job that out-waited its deadline is answered `deadline_exceeded`
//!   without being executed, so a backed-up queue sheds stale work
//!   instead of burning workers on answers nobody is waiting for.
//!   (The check lives in the worker loop; this module carries the data.)

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{Envelope, Response};
use crate::trace::TraceCtx;

/// Server lifecycle states (monotone).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lifecycle {
    /// Accepting and executing work.
    Running,
    /// Rejecting new work; admitted work still completes.
    Draining,
    /// All workers have exited; the queue is empty.
    Stopped,
}

/// One-shot response rendezvous between the admitting thread and the
/// worker that executes the job. `fill` is called exactly once per
/// admitted job (the drain invariant above). The job's trace context
/// (if it was a traced request) rides back with the response so the
/// intake thread can keep recording spans after the worker is done.
#[derive(Debug, Default)]
pub struct ResponseSlot {
    #[allow(clippy::type_complexity)] // one tuple, named right here
    value: Mutex<Option<(Response, Option<Box<TraceCtx>>)>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// An empty slot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Delivers the response (and the trace context back) and wakes the
    /// waiter.
    ///
    /// # Panics
    /// Panics if the slot lock is poisoned.
    pub fn fill(&self, response: Response, trace: Option<Box<TraceCtx>>) {
        let mut v = self.value.lock().expect("slot lock");
        *v = Some((response, trace));
        self.ready.notify_all();
    }

    /// Blocks until the response arrives.
    ///
    /// # Panics
    /// Panics if the slot lock is poisoned.
    #[must_use]
    pub fn wait(&self) -> (Response, Option<Box<TraceCtx>>) {
        let mut v = self.value.lock().expect("slot lock");
        loop {
            if let Some(r) = v.take() {
                return r;
            }
            v = self.ready.wait(v).expect("slot lock");
        }
    }
}

/// Where an executed job's answer goes.
///
/// In-process callers ([`crate::Session::call`]) block on a
/// [`ResponseSlot`]; TCP requests instead carry the coordinates of the
/// connection that issued them — owning shard, connection id, and the
/// per-connection sequence number that keeps pipelined responses in
/// request order — and the executing shard mails the *serialized* line
/// back to that connection's shard.
#[derive(Debug)]
pub enum ReplyTo {
    /// Fill this slot and wake the blocked caller thread.
    Slot(std::sync::Arc<ResponseSlot>),
    /// Mail the rendered response line to a connection's shard.
    Conn {
        /// Shard that owns the connection.
        shard: usize,
        /// Connection id within that shard.
        conn: u64,
        /// Position in the connection's pipelined-response order.
        seq: u64,
    },
}

/// An admitted job: the request, when it was admitted, its queue-wait
/// deadline, and where to deliver the answer.
#[derive(Debug)]
pub struct Job {
    /// The request envelope.
    pub envelope: Envelope,
    /// Admission timestamp (queue-wait measurement and deadline base).
    pub enqueued: Instant,
    /// Maximum tolerated queue wait, if any.
    pub deadline: Option<Duration>,
    /// Where the answer is delivered.
    pub reply: ReplyTo,
    /// Span context of a traced request (almost always `None`).
    pub trace: Option<Box<TraceCtx>>,
}

/// Why admission failed. The rejected job is handed back so the caller
/// keeps its slot and trace context.
#[derive(Debug)]
pub enum AdmissionError {
    /// The queue is at capacity — shed.
    Full(Job),
    /// The server is draining or stopped.
    Draining(Job),
}

/// Result of a non-blocking [`AdmissionQueue::try_pop`].
#[derive(Debug)]
pub enum Popped {
    /// The next admitted job.
    Job(Job),
    /// Nothing queued right now; more work may still be admitted.
    Empty,
    /// Draining (or stopped) **and** the backlog is exhausted — the
    /// consumer's signal that no job will ever arrive again.
    ShuttingDown,
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    lifecycle: Lifecycle,
}

/// The bounded admission queue (push: any intake thread; pop: workers).
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    takeable: Condvar,
    capacity: usize,
    /// Jobs handed to workers after drain began — the backlog the drain
    /// invariant promises to finish, made countable for `server_stats`.
    drained: AtomicU64,
}

impl AdmissionQueue {
    /// A queue that admits at most `capacity` waiting jobs.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (the server could never admit work).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                lifecycle: Lifecycle::Running,
            }),
            takeable: Condvar::new(),
            capacity,
            drained: AtomicU64::new(0),
        }
    }

    /// Admits a job, or fails synchronously (never blocks).
    ///
    /// # Errors
    /// [`AdmissionError::Full`] when at capacity (load shed),
    /// [`AdmissionError::Draining`] after drain began — both hand the
    /// job back.
    ///
    /// # Panics
    /// Panics if the queue lock is poisoned.
    // The large Err variants are the point: rejection returns the whole
    // job so the caller keeps its response slot and trace context.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, job: Job) -> Result<(), AdmissionError> {
        let mut s = self.state.lock().expect("queue lock");
        if s.lifecycle != Lifecycle::Running {
            return Err(AdmissionError::Draining(job));
        }
        if s.jobs.len() >= self.capacity {
            return Err(AdmissionError::Full(job));
        }
        s.jobs.push_back(job);
        drop(s);
        self.takeable.notify_one();
        Ok(())
    }

    /// Blocks for the next job. Returns `None` exactly when the server is
    /// draining **and** the queue is empty — the worker's signal to exit.
    /// Admitted jobs are always handed out before any `None`.
    ///
    /// # Panics
    /// Panics if the queue lock is poisoned.
    #[must_use]
    pub fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = s.jobs.pop_front() {
                if s.lifecycle != Lifecycle::Running {
                    self.drained.fetch_add(1, Ordering::Relaxed);
                }
                return Some(job);
            }
            if s.lifecycle != Lifecycle::Running {
                return None;
            }
            s = self.takeable.wait(s).expect("queue lock");
        }
    }

    /// Non-blocking pop for shard event loops (which must return to their
    /// poller instead of parking on a condvar). Hands out the backlog
    /// while draining — the drain invariant — and reports
    /// [`Popped::ShuttingDown`] only once draining **and** empty.
    ///
    /// # Panics
    /// Panics if the queue lock is poisoned.
    #[must_use]
    pub fn try_pop(&self) -> Popped {
        let mut s = self.state.lock().expect("queue lock");
        if let Some(job) = s.jobs.pop_front() {
            if s.lifecycle != Lifecycle::Running {
                self.drained.fetch_add(1, Ordering::Relaxed);
            }
            return Popped::Job(job);
        }
        if s.lifecycle != Lifecycle::Running {
            return Popped::ShuttingDown;
        }
        Popped::Empty
    }

    /// Jobs handed to workers after drain began (cumulative).
    #[must_use]
    pub fn drained(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }

    /// Begins draining: no new admissions, workers finish the backlog and
    /// exit. Idempotent.
    ///
    /// # Panics
    /// Panics if the queue lock is poisoned.
    pub fn drain(&self) {
        let mut s = self.state.lock().expect("queue lock");
        if s.lifecycle == Lifecycle::Running {
            s.lifecycle = Lifecycle::Draining;
        }
        drop(s);
        self.takeable.notify_all();
    }

    /// Marks the server fully stopped (workers joined).
    ///
    /// # Panics
    /// Panics if the queue lock is poisoned.
    pub fn mark_stopped(&self) {
        self.state.lock().expect("queue lock").lifecycle = Lifecycle::Stopped;
    }

    /// Current lifecycle.
    ///
    /// # Panics
    /// Panics if the queue lock is poisoned.
    #[must_use]
    pub fn lifecycle(&self) -> Lifecycle {
        self.state.lock().expect("queue lock").lifecycle
    }

    /// Jobs currently waiting (recorded into the depth histogram at pop).
    ///
    /// # Panics
    /// Panics if the queue lock is poisoned.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").jobs.len()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use std::sync::Arc;

    fn job() -> Job {
        Job {
            envelope: Envelope::of(Request::ServerStats),
            enqueued: Instant::now(),
            deadline: None,
            reply: ReplyTo::Slot(Arc::new(ResponseSlot::new())),
            trace: None,
        }
    }

    #[test]
    fn sheds_synchronously_at_capacity() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(job()).is_ok());
        assert!(q.try_push(job()).is_ok());
        assert!(matches!(q.try_push(job()), Err(AdmissionError::Full(_))));
        assert_eq!(q.depth(), 2, "shed push must not grow the queue");
    }

    #[test]
    fn drain_rejects_new_but_hands_out_backlog() {
        let q = AdmissionQueue::new(4);
        q.try_push(job()).unwrap();
        q.try_push(job()).unwrap();
        q.drain();
        assert!(matches!(
            q.try_push(job()),
            Err(AdmissionError::Draining(_))
        ));
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "empty + draining terminates workers");
        assert_eq!(q.lifecycle(), Lifecycle::Draining);
        assert_eq!(q.drained(), 2, "backlog handed out after drain is counted");
    }

    #[test]
    fn pop_blocks_until_push_or_drain() {
        let q = Arc::new(AdmissionQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().is_some());
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(job()).unwrap();
        assert!(t.join().unwrap());

        let q3 = Arc::clone(&q);
        let t = std::thread::spawn(move || q3.pop().is_none());
        std::thread::sleep(Duration::from_millis(20));
        q.drain();
        assert!(t.join().unwrap(), "drain must release blocked workers");
    }

    #[test]
    fn response_slot_delivers_across_threads() {
        let slot = Arc::new(ResponseSlot::new());
        let s2 = Arc::clone(&slot);
        let t = std::thread::spawn(move || s2.wait());
        std::thread::sleep(Duration::from_millis(10));
        slot.fill(
            Response::error(crate::protocol::ErrorKind::Internal, "x"),
            None,
        );
        let (resp, trace) = t.join().unwrap();
        assert_eq!(
            resp.error_kind(),
            Some(crate::protocol::ErrorKind::Internal)
        );
        assert!(trace.is_none());
    }

    #[test]
    fn try_pop_distinguishes_empty_from_shutdown() {
        let q = AdmissionQueue::new(2);
        assert!(matches!(q.try_pop(), Popped::Empty), "running + empty");
        q.try_push(job()).unwrap();
        q.try_push(job()).unwrap();
        q.drain();
        // The drain invariant: backlog first, then the terminal signal.
        assert!(matches!(q.try_pop(), Popped::Job(_)));
        assert!(matches!(q.try_pop(), Popped::Job(_)));
        assert!(matches!(q.try_pop(), Popped::ShuttingDown));
        assert!(
            matches!(q.try_pop(), Popped::ShuttingDown),
            "stays terminal"
        );
        assert_eq!(q.drained(), 2);
    }

    #[test]
    fn drain_is_idempotent() {
        let q = AdmissionQueue::new(1);
        q.drain();
        q.drain();
        assert_eq!(q.lifecycle(), Lifecycle::Draining);
        q.mark_stopped();
        assert_eq!(q.lifecycle(), Lifecycle::Stopped);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = AdmissionQueue::new(0);
    }
}

//! # sgl-serve — a graph-query service over compiled spiking networks
//!
//! The paper's constructions have an unusual serving profile: the §3 SSSP
//! network and the layered k-hop network are **source-independent** — a
//! query's source is a `t = 0` stimulus, nothing more. So the expensive
//! step (compiling a graph into a resident spiking network) is shared
//! across every query against that graph, and a long-running service
//! amortizes it the way `sgl_core::apsp` does within one batch. This
//! crate is that service:
//!
//! * [`protocol`] — JSON-lines requests/responses with typed errors
//!   (`overloaded`, `draining`, `deadline_exceeded`, …).
//! * [`cache`] — the graph registry and the compiled-network cache:
//!   entries live on their [`cache::GraphHandle`], keyed by
//!   `(algorithm, params)`, so a network can only ever answer for the
//!   exact graph it was compiled from.
//! * [`admission`] — per-shard bounded queues, load shedding, deadlines,
//!   and the `Running → Draining → Stopped` lifecycle.
//! * [`reactor`] — readiness-based I/O: a minimal `poll(2)` wrapper
//!   with a self-pipe [`reactor::Waker`] (std-only FFI shim on Linux, a
//!   portable fallback elsewhere) plus the `RLIMIT_NOFILE` preflight.
//! * [`ring`] — the SPSC handoff ring the accept loop uses to pass
//!   accepted sockets to shards.
//! * [`shard`] — the shard event loop: each of N shards single-threadedly
//!   owns its connection set, registry partition, compiled-net cache,
//!   and run queue; graphs route to shards by FNV name hash, so a
//!   graph's networks live on exactly one shard with no cross-shard
//!   locking on the query path.
//! * [`stats`] — cql-stress-style sharded statistics: per-shard
//!   [`sgl_observe::LogHistogram`] shards, combined on read, plus the
//!   per-shard balance gauges `server_stats` reports.
//! * [`session`] — the server core (shard spawning, routing, cross-shard
//!   stats/drain composition) and in-process client ([`Session`]): the
//!   full service without sockets, for tests and embedding.
//! * [`trace`] — `sgl-trace`: request-scoped span capture across the
//!   pipeline (`accept → parse → admit → queue_wait → cache_lookup →
//!   compile → engine_run → serialize → write`), with sampling,
//!   slow-request retention, and Chrome trace-event export via the
//!   `trace_dump` op.
//! * [`tcp`] — the reactor-driven accept loop (idle server: zero
//!   syscalls) and [`tcp::LoopbackServer`].
//! * [`stress`] — the load harness behind the `sgl-stress` binary:
//!   closed- and open-loop generators, a thread-per-connection driver
//!   and a single-threaded reactor driver multiplexing thousands of
//!   pipelined connections, live interval reporting, and the cold/warm
//!   and connection-scaling measurements committed as
//!   `BENCH_serve.json`.
//!
//! Binaries: `sgl-serve` (the daemon) and `sgl-stress` (the harness).

#![warn(missing_docs)]
// `deny`, not `forbid`: the reactor's poll(2) FFI shim carries the one
// module-scoped `#[allow(unsafe_code)]` in the crate.
#![deny(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod protocol;
pub mod reactor;
pub mod ring;
pub mod session;
pub mod shard;
pub mod stats;
pub mod stress;
pub mod tcp;
pub mod trace;

pub use admission::Lifecycle;
pub use cache::{Algo, CacheOutcome, CompiledNet, NetCache};
pub use protocol::{CacheMode, Envelope, ErrorKind, OpKind, Request, Response};
pub use session::{ServerConfig, Session};
pub use tcp::LoopbackServer;
pub use trace::{TraceConfig, Tracing};

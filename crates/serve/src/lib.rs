//! # sgl-serve — a graph-query service over compiled spiking networks
//!
//! The paper's constructions have an unusual serving profile: the §3 SSSP
//! network and the layered k-hop network are **source-independent** — a
//! query's source is a `t = 0` stimulus, nothing more. So the expensive
//! step (compiling a graph into a resident spiking network) is shared
//! across every query against that graph, and a long-running service
//! amortizes it the way `sgl_core::apsp` does within one batch. This
//! crate is that service:
//!
//! * [`protocol`] — JSON-lines requests/responses with typed errors
//!   (`overloaded`, `draining`, `deadline_exceeded`, …).
//! * [`cache`] — the graph registry and the compiled-network cache:
//!   entries live on their [`cache::GraphHandle`], keyed by
//!   `(algorithm, params)`, so a network can only ever answer for the
//!   exact graph it was compiled from.
//! * [`admission`] — bounded queue, load shedding, deadlines, and the
//!   `Running → Draining → Stopped` lifecycle.
//! * [`stats`] — cql-stress-style sharded statistics: per-worker
//!   [`sgl_observe::LogHistogram`] shards, combined on read.
//! * [`session`] — the server core and in-process client ([`Session`]):
//!   the full service without sockets, for tests and embedding.
//! * [`trace`] — `sgl-trace`: request-scoped span capture across the
//!   pipeline (`accept → parse → admit → queue_wait → cache_lookup →
//!   compile → engine_run → serialize → write`), with sampling,
//!   slow-request retention, and Chrome trace-event export via the
//!   `trace_dump` op.
//! * [`tcp`] — `std::net` JSON-lines transport and [`tcp::LoopbackServer`].
//! * [`stress`] — the load harness behind the `sgl-stress` binary:
//!   closed- and open-loop generators, live interval reporting, and the
//!   cold/warm cache measurement committed as `BENCH_serve.json`.
//!
//! Binaries: `sgl-serve` (the daemon) and `sgl-stress` (the harness).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod protocol;
pub mod session;
pub mod stats;
pub mod stress;
pub mod tcp;
pub mod trace;

pub use admission::Lifecycle;
pub use cache::{Algo, CacheOutcome, CompiledNet, NetCache};
pub use protocol::{CacheMode, Envelope, ErrorKind, OpKind, Request, Response};
pub use session::{ServerConfig, Session};
pub use tcp::LoopbackServer;
pub use trace::{TraceConfig, Tracing};

//! §4.4: embedding arbitrary digraphs into the crossbar by programming
//! type-2 delays.

use crate::topology::{Crossbar, XbarVertex};
use sgl_core::sssp_pseudo::SpikingSssp;
use sgl_graph::{Graph, Len, Node};

/// Record of one embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmbedInfo {
    /// The length-scaling factor applied so the minimum scaled length is at
    /// least `2n` (making every type-2 delay ≥ 1).
    pub scale: Len,
    /// Type-2 delay writes this embedding performed (= `m`, §4.4).
    pub writes: u64,
}

impl Crossbar {
    /// Embeds `g` (which must have at most `n` vertices) by programming
    /// one type-2 delay per edge: `ℓ'(ij) − 2|i−j| − 1` with `ℓ'` the
    /// scaled length. Graph vertex `v` (0-based) maps to crossbar index
    /// `v + 1` (1-based). Self-loops are skipped (they never shorten a
    /// path); parallel edges keep the smallest delay.
    ///
    /// # Examples
    /// ```
    /// use sgl_crossbar::Crossbar;
    /// use sgl_graph::csr::from_edges;
    /// let g = from_edges(3, &[(0, 1, 2), (1, 2, 3)]);
    /// let mut xbar = Crossbar::new(3);
    /// let info = xbar.embed(&g);
    /// assert_eq!(info.writes, 2); // one type-2 delay per edge
    /// ```
    ///
    /// # Panics
    /// Panics if `g.n() > self.n()` or `g` has no edges.
    pub fn embed(&mut self, g: &Graph) -> EmbedInfo {
        assert!(g.n() <= self.n(), "graph too large for this crossbar");
        let min_len = g.min_len().expect("cannot embed an edgeless graph");
        let target = 2 * self.n() as Len;
        let scale = target.div_ceil(min_len);
        let before = self.writes();

        for (u, v, len) in g.edges() {
            if u == v {
                continue;
            }
            let (i, j) = (u + 1, v + 1);
            let scaled = len * scale;
            let gap = 2 * i.abs_diff(j) as Len + 1;
            debug_assert!(scaled > gap, "scaling failed to clear the route");
            let delay = scaled - gap;
            let new = match self.type2_delay(i, j) {
                Some(old) => old.min(delay),
                None => delay,
            };
            self.write_type2(i, j, Some(new));
        }

        EmbedInfo {
            scale,
            writes: self.writes() - before,
        }
    }

    /// Un-embeds `g`: disables exactly the type-2 edges `g` programmed
    /// (`O(m)` writes), restoring the all-disabled resting state so the
    /// next graph can be embedded (§4.4's multiplexing argument).
    pub fn unembed(&mut self, g: &Graph) {
        for (u, v, _) in g.edges() {
            if u == v {
                continue;
            }
            if self.type2_delay(u + 1, v + 1).is_some() {
                self.write_type2(u + 1, v + 1, None);
            }
        }
    }
}

/// Runs the §3 spiking SSSP *on the embedded crossbar* and reads out
/// distances of the original graph: source/destination `v` of `G` maps to
/// the crossbar's diagonal vertex `v⁻_(v+1)(v+1)`, and crossbar distances
/// divide by the embedding scale.
#[derive(Debug)]
pub struct EmbeddedSssp {
    xbar_graph: Graph,
    scale: Len,
    n_original: usize,
}

impl EmbeddedSssp {
    /// Prepares a run on the crossbar's current state.
    #[must_use]
    pub fn new(xbar: &Crossbar, info: EmbedInfo, n_original: usize) -> Self {
        Self {
            xbar_graph: xbar.to_graph(),
            scale: info.scale,
            n_original,
        }
    }

    /// Spiking SSSP from original-graph node `source`; returns original-
    /// graph distances (descaled).
    ///
    /// # Panics
    /// Panics if a crossbar distance is not a multiple of the scale (an
    /// embedding bug) or the simulator fails.
    #[must_use]
    pub fn solve(&self, xbar: &Crossbar, source: Node) -> Vec<Option<Len>> {
        let src = xbar.index(XbarVertex::Minus(source + 1, source + 1));
        let run = SpikingSssp::new(&self.xbar_graph, src)
            .solve_all()
            .expect("crossbar simulation failed");
        (0..self.n_original)
            .map(|v| {
                let idx = xbar.index(XbarVertex::Minus(v + 1, v + 1));
                run.distances[idx].map(|d| {
                    assert!(
                        d % self.scale == 0,
                        "crossbar distance {d} not a multiple of scale {}",
                        self.scale
                    );
                    d / self.scale
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgl_graph::csr::from_edges;
    use sgl_graph::{dijkstra, generators};

    /// Dijkstra on the crossbar graph between diagonal − vertices must
    /// reproduce scaled input-graph distances.
    fn check_embedding(g: &Graph) {
        let mut xbar = Crossbar::new(g.n());
        let info = xbar.embed(g);
        let xg = xbar.to_graph();
        let truth = dijkstra::dijkstra(g, 0);
        let src = xbar.index(XbarVertex::Minus(1, 1));
        let xr = dijkstra::dijkstra(&xg, src);
        for v in 0..g.n() {
            let idx = xbar.index(XbarVertex::Minus(v + 1, v + 1));
            let got = xr.distances[idx].map(|d| d / info.scale);
            assert_eq!(got, truth.distances[v], "node {v}");
            if let Some(d) = xr.distances[idx] {
                assert_eq!(d % info.scale, 0, "non-multiple distance at {v}");
            }
        }
    }

    #[test]
    fn single_edge_path_length_preserved() {
        // The §4.4 identity: v⁻_ii to v⁻_jj costs exactly ℓ'(ij).
        let g = from_edges(3, &[(0, 2, 5)]);
        let mut xbar = Crossbar::new(3);
        let info = xbar.embed(&g);
        let xg = xbar.to_graph();
        let src = xbar.index(XbarVertex::Minus(1, 1));
        let dst = xbar.index(XbarVertex::Minus(3, 3));
        let r = dijkstra::dijkstra(&xg, src);
        assert_eq!(r.distances[dst], Some(5 * info.scale));
    }

    #[test]
    fn diamond_distances_preserved() {
        check_embedding(&from_edges(
            4,
            &[(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 5)],
        ));
    }

    #[test]
    fn random_graphs_distances_preserved() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..3 {
            let g = generators::gnm_connected(&mut rng, 10, 40, 1..=9);
            check_embedding(&g);
        }
    }

    #[test]
    fn complete_graph_worst_case() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = generators::complete(&mut rng, 6, 1..=6);
        check_embedding(&g);
    }

    #[test]
    fn embedding_writes_exactly_m() {
        let mut rng = StdRng::seed_from_u64(73);
        let g = generators::gnm_connected(&mut rng, 12, 50, 1..=4);
        let mut xbar = Crossbar::new(12);
        let info = xbar.embed(&g);
        assert_eq!(info.writes, g.m() as u64);
    }

    #[test]
    fn unembed_then_reembed_sequence() {
        let mut rng = StdRng::seed_from_u64(74);
        let g1 = generators::gnm_connected(&mut rng, 8, 24, 1..=5);
        let g2 = generators::gnm_connected(&mut rng, 8, 30, 1..=5);
        let mut xbar = Crossbar::new(8);

        let i1 = xbar.embed(&g1);
        assert_eq!(xbar.enabled_type2(), count_distinct_offdiag(&g1));
        xbar.unembed(&g1);
        assert_eq!(xbar.enabled_type2(), 0);
        // Total writes so far ≈ 2·m1 (embed + unembed): O(m) multiplexing.
        assert!(xbar.writes() <= 2 * g1.m() as u64);

        let i2 = xbar.embed(&g2);
        let truth = dijkstra::dijkstra(&g2, 0);
        let xg = xbar.to_graph();
        let src = xbar.index(XbarVertex::Minus(1, 1));
        let xr = dijkstra::dijkstra(&xg, src);
        for v in 0..g2.n() {
            let idx = xbar.index(XbarVertex::Minus(v + 1, v + 1));
            assert_eq!(
                xr.distances[idx].map(|d| d / i2.scale),
                truth.distances[v],
                "node {v} after re-embedding"
            );
        }
        let _ = i1;
    }

    #[test]
    fn spiking_sssp_on_the_crossbar() {
        // The full pipeline: embed, run the actual spiking algorithm on
        // H_n, read out original distances — Theorem 4.1's O(nL + m) path.
        let mut rng = StdRng::seed_from_u64(75);
        let g = generators::gnm_connected(&mut rng, 8, 28, 1..=5);
        let mut xbar = Crossbar::new(8);
        let info = xbar.embed(&g);
        let solver = EmbeddedSssp::new(&xbar, info, g.n());
        let got = solver.solve(&xbar, 0);
        let truth = dijkstra::dijkstra(&g, 0);
        assert_eq!(got, truth.distances);
    }

    #[test]
    fn smaller_graph_in_larger_crossbar() {
        let g = from_edges(3, &[(0, 1, 3), (1, 2, 4)]);
        let mut xbar = Crossbar::new(6);
        let info = xbar.embed(&g);
        let xg = xbar.to_graph();
        let src = xbar.index(XbarVertex::Minus(1, 1));
        let r = dijkstra::dijkstra(&xg, src);
        let dst = xbar.index(XbarVertex::Minus(3, 3));
        assert_eq!(r.distances[dst], Some(7 * info.scale));
    }

    #[test]
    fn parallel_edges_keep_cheapest() {
        let g = from_edges(2, &[(0, 1, 9), (0, 1, 3)]);
        let mut xbar = Crossbar::new(2);
        let info = xbar.embed(&g);
        let xg = xbar.to_graph();
        let src = xbar.index(XbarVertex::Minus(1, 1));
        let r = dijkstra::dijkstra(&xg, src);
        let dst = xbar.index(XbarVertex::Minus(2, 2));
        assert_eq!(r.distances[dst], Some(3 * info.scale));
    }

    fn count_distinct_offdiag(g: &Graph) -> usize {
        let mut set = std::collections::HashSet::new();
        for (u, v, _) in g.edges() {
            if u != v {
                set.insert((u, v));
            }
        }
        set.len()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sgl_graph::csr::from_edges;
    use sgl_graph::dijkstra;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// §4.4 on arbitrary graphs: embedding preserves every SSSP
        /// distance (scaled), for any random edge set.
        #[test]
        fn embedding_preserves_distances(
            n in 2usize..10,
            edges in proptest::collection::vec((0usize..10, 0usize..10, 1u64..12), 1..30),
        ) {
            let edges: Vec<(usize, usize, u64)> = edges
                .into_iter()
                .filter(|&(u, v, _)| u < n && v < n && u != v)
                .collect();
            prop_assume!(!edges.is_empty());
            let g = from_edges(n, &edges);
            let mut xbar = Crossbar::new(n);
            let info = xbar.embed(&g);
            let xg = xbar.to_graph();
            let truth = dijkstra::dijkstra(&g, 0);
            let src = xbar.index(crate::topology::XbarVertex::Minus(1, 1));
            let xr = dijkstra::dijkstra(&xg, src);
            for v in 0..n {
                let idx = xbar.index(crate::topology::XbarVertex::Minus(v + 1, v + 1));
                prop_assert_eq!(
                    xr.distances[idx].map(|d| d / info.scale),
                    truth.distances[v],
                    "node {}", v
                );
            }
        }
    }
}

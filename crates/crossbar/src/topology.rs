//! The crossbar (stacked grid) `H_n` of Figure 2.

use sgl_graph::{Graph, GraphBuilder, Len};

/// A vertex of `H_n`: the paper's `v⁻_ij` / `v⁺_ij` with 1-based `i, j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum XbarVertex {
    /// `v⁻_ij` — the "collect" plane (column `j` routes into the diagonal).
    Minus(usize, usize),
    /// `v⁺_ij` — the "distribute" plane (row `i` routes out of the
    /// diagonal).
    Plus(usize, usize),
}

/// The crossbar `H_n` with programmable type-2 delays.
///
/// The fixed edges (types 1, 3, 4, 5, 6) always carry the minimum delay
/// `δ = 1`; type-2 edges `v⁺_ij → v⁻_ij` (for `i ≠ j`) start *disabled*
/// ("infinite delay") and are programmed by the embedder. Writes are
/// counted so the `O(m)` embed/unembed claims are measurable.
#[derive(Clone, Debug)]
pub struct Crossbar {
    n: usize,
    /// Type-2 delay for pair `(i, j)`, row-major, `None` = disabled.
    type2: Vec<Option<Len>>,
    /// Number of type-2 delay writes performed so far (embed + unembed).
    writes: u64,
}

impl Crossbar {
    /// Builds `H_n` with all type-2 edges disabled.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            type2: vec![None; n * n],
            writes: 0,
        }
    }

    /// Order `n` of the crossbar.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of delay writes performed so far.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Dense vertex index of a crossbar vertex (for graph/SNN views):
    /// `v⁻_ij → (i−1)n + (j−1)`, `v⁺_ij → n² + (i−1)n + (j−1)`.
    ///
    /// # Panics
    /// Panics if indices are outside `1..=n`.
    #[must_use]
    pub fn index(&self, v: XbarVertex) -> usize {
        let n = self.n;
        match v {
            XbarVertex::Minus(i, j) => {
                assert!((1..=n).contains(&i) && (1..=n).contains(&j));
                (i - 1) * n + (j - 1)
            }
            XbarVertex::Plus(i, j) => {
                assert!((1..=n).contains(&i) && (1..=n).contains(&j));
                n * n + (i - 1) * n + (j - 1)
            }
        }
    }

    /// Total vertices: `2n²`.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        2 * self.n * self.n
    }

    /// Sets (or disables with `None`) the type-2 delay for pair `(i, j)`,
    /// 1-based, `i ≠ j` or `i == j` both allowed storage-wise but only
    /// `i ≠ j` type-2 edges exist.
    pub(crate) fn write_type2(&mut self, i: usize, j: usize, delay: Option<Len>) {
        self.type2[(i - 1) * self.n + (j - 1)] = delay;
        self.writes += 1;
    }

    /// Currently programmed type-2 delay for `(i, j)`.
    #[must_use]
    pub fn type2_delay(&self, i: usize, j: usize) -> Option<Len> {
        self.type2[(i - 1) * self.n + (j - 1)]
    }

    /// Number of enabled type-2 edges.
    #[must_use]
    pub fn enabled_type2(&self) -> usize {
        self.type2.iter().filter(|d| d.is_some()).count()
    }

    /// Materialises the crossbar as a weighted digraph (edge length =
    /// synapse delay), with disabled type-2 edges absent. Vertex ids
    /// follow [`Self::index`].
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let n = self.n;
        let mut b = GraphBuilder::new(self.vertex_count());
        let minus = |i: usize, j: usize| (i - 1) * n + (j - 1);
        let plus = |i: usize, j: usize| n * n + (i - 1) * n + (j - 1);

        // Type 1: v⁻_ii → v⁺_ii.
        for i in 1..=n {
            b.add_edge(minus(i, i), plus(i, i), 1);
        }
        // Type 2: v⁺_ij → v⁻_ij for i ≠ j, when enabled.
        for i in 1..=n {
            for j in 1..=n {
                if i != j {
                    if let Some(d) = self.type2_delay(i, j) {
                        b.add_edge(plus(i, j), minus(i, j), d);
                    }
                }
            }
        }
        // Type 3: v⁺_ij → v⁺_i(j+1) for i ≤ j; i, j ∈ [n−1].
        for i in 1..n {
            for j in i..n {
                b.add_edge(plus(i, j), plus(i, j + 1), 1);
            }
        }
        // Type 4: v⁺_i(j+1) → v⁺_ij for i > j (j + 1 ≤ n).
        for j in 1..n {
            for i in (j + 1)..=n {
                b.add_edge(plus(i, j + 1), plus(i, j), 1);
            }
        }
        // Type 5: v⁻_ij → v⁻_(i+1)j for i < j.
        for j in 1..=n {
            for i in 1..j {
                b.add_edge(minus(i, j), minus(i + 1, j), 1);
            }
        }
        // Type 6: v⁻_(i+1)j → v⁻_ij for i ≥ j; i, j ∈ [n−1].
        for j in 1..n {
            for i in j..n {
                b.add_edge(minus(i + 1, j), minus(i, j), 1);
            }
        }
        b.build()
    }

    /// Number of fixed (always present) edges of `H_n`:
    /// `n` (type 1) + `2 · n(n−1)/2` (+ plane) + `2 · n(n−1)/2` (− plane).
    #[must_use]
    pub fn fixed_edge_count(&self) -> usize {
        let n = self.n;
        n + 2 * (n * (n - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h3_matches_figure_2_counts() {
        let x = Crossbar::new(3);
        assert_eq!(x.vertex_count(), 18);
        let g = x.to_graph(); // no type-2 enabled
                              // type1: 3; type3: 3 (11→12, 12→13, 22→23); type4: 3 (22←21? ...)
                              // total fixed = 3 + 2·3 + 2·3 = 15.
        assert_eq!(g.m(), x.fixed_edge_count());
        assert_eq!(g.m(), 15);
    }

    #[test]
    fn index_is_dense_and_distinct() {
        let x = Crossbar::new(4);
        let mut seen = std::collections::HashSet::new();
        for i in 1..=4 {
            for j in 1..=4 {
                assert!(seen.insert(x.index(XbarVertex::Minus(i, j))));
                assert!(seen.insert(x.index(XbarVertex::Plus(i, j))));
            }
        }
        assert_eq!(seen.len(), 32);
        assert!(seen.iter().all(|&v| v < 32));
    }

    #[test]
    fn plus_plane_routes_away_from_diagonal() {
        // From v⁺_ii one can reach every v⁺_ij along unit edges in
        // |i−j| steps.
        let x = Crossbar::new(5);
        let g = x.to_graph();
        let start = x.index(XbarVertex::Plus(2, 2));
        let r = sgl_graph::dijkstra::dijkstra(&g, start);
        for j in 1..=5 {
            let idx = x.index(XbarVertex::Plus(2, j));
            assert_eq!(
                r.distances[idx],
                Some((2i64 - j as i64).unsigned_abs()),
                "v+_2{j}"
            );
        }
    }

    #[test]
    fn minus_plane_routes_into_diagonal() {
        let x = Crossbar::new(5);
        let g = x.to_graph();
        for j in 1..=5usize {
            for i in 1..=5usize {
                let start = x.index(XbarVertex::Minus(i, j));
                let r = sgl_graph::dijkstra::dijkstra(&g, start);
                let diag = x.index(XbarVertex::Minus(j, j));
                assert_eq!(
                    r.distances[diag],
                    Some((i as i64 - j as i64).unsigned_abs()),
                    "v-_{i}{j} -> diagonal"
                );
            }
        }
    }

    #[test]
    fn type2_write_tracking() {
        let mut x = Crossbar::new(3);
        assert_eq!(x.enabled_type2(), 0);
        x.write_type2(1, 2, Some(7));
        x.write_type2(2, 3, Some(9));
        assert_eq!(x.enabled_type2(), 2);
        assert_eq!(x.writes(), 2);
        x.write_type2(1, 2, None);
        assert_eq!(x.enabled_type2(), 1);
        assert_eq!(x.writes(), 3);
        assert_eq!(x.type2_delay(2, 3), Some(9));
    }

    #[test]
    fn vertex_and_edge_counts_are_quadratic() {
        for n in [2usize, 4, 8, 16] {
            let x = Crossbar::new(n);
            assert_eq!(x.vertex_count(), 2 * n * n);
            assert_eq!(x.to_graph().m(), n + 2 * n * (n - 1));
        }
    }
}

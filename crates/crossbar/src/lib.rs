//! # sgl-crossbar — the stacked-grid crossbar and the §4.4 embedding
//!
//! Implements the crossbar (stacked grid) `H_n` of Figure 2 — "a topology
//! we may reasonably expect as a subset of every neuromorphic
//! architecture" — and the §4.4 scheme embedding an arbitrary `n`-vertex
//! digraph into it by programming delays, such that shortest paths in the
//! crossbar equal (scaled) shortest paths in the input graph.
//!
//! `H_n` has `2n²` vertices `v⁻_ij`, `v⁺_ij` and six edge types. Vertex
//! `i` of the input graph is represented by row `i` of `+` vertices
//! (fanning out from the diagonal) and column `i` of `−` vertices (fanning
//! into the diagonal); the graph edge `(i, j)` corresponds to the type-2
//! crossbar edge `v⁺_ij → v⁻_ij`. All fixed-topology edges (types 1 and
//! 3–6) carry the minimum delay; embedding a graph only writes the `m`
//! type-2 delays `ℓ'(ij) − 2|i−j| − 1` (after scaling lengths so the
//! minimum is `2n`), which is why embedding and un-embedding cost `O(m)`
//! and a sequence of graphs can be multiplexed with constant-factor
//! slowdown (§4.4 "Running time").

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Indexed loops over several parallel per-node arrays are the house style
// for the graph/neuron kernels here; iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod embedding;
pub mod scheduler;
pub mod topology;

pub use embedding::{EmbedInfo, EmbeddedSssp};
pub use scheduler::CrossbarScheduler;
pub use topology::{Crossbar, XbarVertex};

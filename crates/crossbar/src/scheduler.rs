//! Multiplexing a sequence of problems over one crossbar (§4.4 "Running
//! time").
//!
//! "Suppose we wish to embed p graphs G_1, …, G_p, in that order. … It
//! takes O(m_i) time to both embed and unembed a graph G_i, so we only
//! incur a constant-factor slowdown." This scheduler owns a crossbar,
//! embeds each submitted problem, runs the §3 spiking SSSP on the
//! embedded topology, un-embeds, and accounts for the programming cost —
//! the usage model of a shared neuromorphic accelerator.

use crate::embedding::EmbeddedSssp;
use crate::topology::Crossbar;
use sgl_graph::{Graph, Len, Node};

/// Outcome of one scheduled problem.
#[derive(Clone, Debug)]
pub struct ScheduledRun {
    /// Distances in the submitted graph (descaled).
    pub distances: Vec<Option<Len>>,
    /// Type-2 delay writes this problem cost (embed + unembed = `2m`).
    pub delay_writes: u64,
    /// The length scale the embedding used.
    pub scale: Len,
}

/// A crossbar shared by a sequence of shortest-path problems.
#[derive(Debug)]
pub struct CrossbarScheduler {
    xbar: Crossbar,
    runs: u32,
}

impl CrossbarScheduler {
    /// A scheduler over `H_n`; submitted graphs may have up to `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            xbar: Crossbar::new(n),
            runs: 0,
        }
    }

    /// Embeds `g`, solves SSSP from `source` on the crossbar, un-embeds,
    /// and returns the distances plus programming-cost accounting.
    ///
    /// # Panics
    /// Panics if `g` exceeds the crossbar order or has no edges.
    pub fn run(&mut self, g: &Graph, source: Node) -> ScheduledRun {
        let before = self.xbar.writes();
        let info = self.xbar.embed(g);
        let solver = EmbeddedSssp::new(&self.xbar, info, g.n());
        let distances = solver.solve(&self.xbar, source);
        self.xbar.unembed(g);
        self.runs += 1;
        debug_assert_eq!(self.xbar.enabled_type2(), 0, "resting state restored");
        ScheduledRun {
            distances,
            delay_writes: self.xbar.writes() - before,
            scale: info.scale,
        }
    }

    /// Problems run so far.
    #[must_use]
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// Total delay writes across all problems (the §4.4 claim: `≤ 2 Σ mᵢ`).
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.xbar.writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgl_graph::{dijkstra, generators};

    #[test]
    fn sequence_of_graphs_all_solved_correctly() {
        let mut rng = StdRng::seed_from_u64(301);
        let mut sched = CrossbarScheduler::new(10);
        let mut total_m = 0u64;
        for _ in 0..5 {
            let g = generators::gnm_connected(&mut rng, 10, 36, 1..=6);
            total_m += g.m() as u64;
            let run = sched.run(&g, 0);
            let truth = dijkstra::dijkstra(&g, 0);
            assert_eq!(run.distances, truth.distances);
            assert_eq!(run.delay_writes, 2 * g.m() as u64);
        }
        assert_eq!(sched.runs(), 5);
        // The §4.4 multiplexing bound: total programming is 2·Σ mᵢ.
        assert_eq!(sched.total_writes(), 2 * total_m);
    }

    #[test]
    fn mixed_sizes_share_one_crossbar() {
        let mut rng = StdRng::seed_from_u64(302);
        let mut sched = CrossbarScheduler::new(12);
        for n in [4usize, 12, 7] {
            let g = generators::gnm_connected(&mut rng, n, (2 * n).min(n * (n - 1)), 1..=5);
            let run = sched.run(&g, 0);
            let truth = dijkstra::dijkstra(&g, 0);
            assert_eq!(run.distances, truth.distances, "n = {n}");
        }
    }
}

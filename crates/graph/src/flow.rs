//! Maximum-flow substrate: residual networks, Dinic's algorithm (the
//! conventional baseline), and **tidal flow** (Fontaine 2018) — the
//! algorithm §8 of the paper singles out as "a promising starting point
//! for a neuromorphic network-flow algorithm" because each iteration is a
//! forward sweep of BFS-like messages, a backward sweep from the sink,
//! and local computation. The neuromorphic (NGA) adaptation lives in
//! `sgl-core::tidal`; this module provides the exact algorithms and the
//! correctness baseline.

use std::collections::VecDeque;

/// Flow/capacity amount.
pub type Cap = u64;

/// A directed flow network with residual-edge pairing: edge `2i` is the
/// forward edge, `2i + 1` its residual twin.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    n: usize,
    /// `(target, capacity)` per directed residual edge.
    targets: Vec<u32>,
    caps: Vec<Cap>,
    /// Out-edge lists (edge indices) per node.
    adj: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// An empty network on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            targets: Vec::new(),
            caps: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of forward edges.
    #[must_use]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Adds a directed edge `u -> v` with capacity `cap`; returns its id.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: Cap) -> usize {
        assert!(u < self.n && v < self.n, "edge out of range");
        let id = self.targets.len();
        self.targets.push(v as u32);
        self.caps.push(cap);
        self.adj[u].push(id as u32);
        self.targets.push(u as u32);
        self.caps.push(0);
        self.adj[v].push(id as u32 + 1);
        id
    }

    /// Remaining residual capacity of residual edge `e`.
    #[must_use]
    pub fn residual(&self, e: usize) -> Cap {
        self.caps[e]
    }

    /// Flow currently assigned to forward edge id `e` (even ids).
    #[must_use]
    pub fn flow_on(&self, e: usize) -> Cap {
        debug_assert!(e.is_multiple_of(2));
        self.caps[e ^ 1]
    }

    fn push(&mut self, e: usize, amount: Cap) {
        self.caps[e] -= amount;
        self.caps[e ^ 1] += amount;
    }

    /// BFS levels from `s` over residual edges; `None` = unreachable.
    #[must_use]
    pub fn levels(&self, s: usize) -> Vec<Option<u32>> {
        let mut level = vec![None; self.n];
        level[s] = Some(0);
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u] {
                let v = self.targets[e as usize] as usize;
                if self.caps[e as usize] > 0 && level[v].is_none() {
                    level[v] = Some(level[u].unwrap() + 1);
                    queue.push_back(v);
                }
            }
        }
        level
    }

    /// Verifies `flow_value` is a feasible flow of that value from `s` to
    /// `t`: capacity constraints hold by construction; checks conservation
    /// and the net outflow of `s`.
    #[must_use]
    pub fn check_feasible(&self, s: usize, t: usize, flow_value: Cap) -> bool {
        let mut net = vec![0i128; self.n];
        for e in (0..self.targets.len()).step_by(2) {
            let f = self.flow_on(e) as i128;
            let u = self.targets[e ^ 1] as usize;
            let v = self.targets[e] as usize;
            net[u] -= f;
            net[v] += f;
        }
        (0..self.n).all(|v| {
            if v == s {
                net[v] == -(flow_value as i128)
            } else if v == t {
                net[v] == flow_value as i128
            } else {
                net[v] == 0
            }
        })
    }
}

/// Statistics of a max-flow run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Outer phases (level-graph rebuilds).
    pub phases: u32,
    /// Inner augmentation passes (DFS augments for Dinic, TIDE calls for
    /// tidal flow).
    pub passes: u32,
    /// Edge inspections, the elementary-work proxy.
    pub edge_visits: u64,
}

/// Dinic's algorithm — the conventional baseline. Returns the max-flow
/// value; the network retains the final flow assignment.
pub fn dinic(net: &mut FlowNetwork, s: usize, t: usize) -> (Cap, FlowStats) {
    assert!(s < net.n && t < net.n && s != t);
    let mut stats = FlowStats::default();
    let mut total = 0;
    loop {
        let level = net.levels(s);
        stats.phases += 1;
        if level[t].is_none() {
            break;
        }
        let mut it = vec![0usize; net.n];
        loop {
            let pushed = dinic_dfs(net, s, t, Cap::MAX, &level, &mut it, &mut stats);
            if pushed == 0 {
                break;
            }
            stats.passes += 1;
            total += pushed;
        }
    }
    (total, stats)
}

fn dinic_dfs(
    net: &mut FlowNetwork,
    u: usize,
    t: usize,
    limit: Cap,
    level: &[Option<u32>],
    it: &mut [usize],
    stats: &mut FlowStats,
) -> Cap {
    if u == t {
        return limit;
    }
    while it[u] < net.adj[u].len() {
        let e = net.adj[u][it[u]] as usize;
        stats.edge_visits += 1;
        let v = net.targets[e] as usize;
        if net.caps[e] > 0 && level[v] == level[u].map(|l| l + 1) {
            let pushed = dinic_dfs(net, v, t, limit.min(net.caps[e]), level, it, stats);
            if pushed > 0 {
                net.push(e, pushed);
                return pushed;
            }
        }
        it[u] += 1;
    }
    0
}

/// One TIDE sweep over the current level graph (Fontaine 2018): a forward
/// overestimate of the arriving tide, a backward pass trimming to the
/// sink's intake, and a forward settling pass restoring conservation.
/// Returns the amount pushed (0 iff the level graph carries nothing).
pub fn tide(
    net: &mut FlowNetwork,
    s: usize,
    t: usize,
    level: &[Option<u32>],
    stats: &mut FlowStats,
) -> Cap {
    // Collect level-graph edges in BFS order.
    let mut order: Vec<u32> = Vec::new();
    let mut nodes: Vec<usize> = (0..net.n).collect();
    nodes.sort_by_key(|&v| level[v].unwrap_or(u32::MAX));
    for &u in &nodes {
        let Some(lu) = level[u] else { continue };
        if level[t].is_some_and(|lt| lu >= lt) {
            continue; // beyond the sink's layer, never useful
        }
        for &e in &net.adj[u] {
            let v = net.targets[e as usize] as usize;
            if net.caps[e as usize] > 0 && level[v] == Some(lu + 1) {
                order.push(e);
            }
        }
    }
    stats.edge_visits += order.len() as u64;

    // Pass 1 (forward): optimistic tide heights.
    let mut h = vec![0u128; net.n];
    h[s] = u128::MAX / 4;
    let mut p: Vec<Cap> = Vec::with_capacity(order.len());
    for &e in &order {
        let u = net.targets[e as usize ^ 1] as usize;
        let v = net.targets[e as usize] as usize;
        let amount = (net.caps[e as usize] as u128).min(h[u]) as Cap;
        p.push(amount);
        h[v] += u128::from(amount);
    }
    if h[t] == 0 {
        return 0;
    }

    // Pass 2 (backward): trim to what the sink actually drains.
    let mut l = vec![0u128; net.n];
    l[t] = h[t];
    for (i, &e) in order.iter().enumerate().rev() {
        let u = net.targets[e as usize ^ 1] as usize;
        let v = net.targets[e as usize] as usize;
        let amount = u128::from(p[i]).min(l[v]) as Cap;
        p[i] = amount;
        l[v] -= u128::from(amount);
        l[u] += u128::from(amount);
    }

    // Pass 3 (forward): settle to actual arrivals (restores conservation).
    let mut have = vec![0u128; net.n];
    have[s] = u128::MAX / 4;
    for (i, &e) in order.iter().enumerate() {
        let u = net.targets[e as usize ^ 1] as usize;
        let v = net.targets[e as usize] as usize;
        let amount = u128::from(p[i]).min(have[u]) as Cap;
        p[i] = amount;
        have[u] -= u128::from(amount);
        have[v] += u128::from(amount);
    }
    let pushed = have[t] as Cap;

    // Apply.
    for (i, &e) in order.iter().enumerate() {
        if p[i] > 0 {
            net.push(e as usize, p[i]);
        }
    }
    pushed
}

/// Tidal flow (Fontaine 2018): repeat TIDE sweeps over fresh level graphs
/// until the sink is unreachable. Returns the max-flow value.
///
/// # Examples
/// ```
/// use sgl_graph::flow::{tidal_flow, FlowNetwork};
/// let mut net = FlowNetwork::new(3);
/// net.add_edge(0, 1, 5);
/// net.add_edge(1, 2, 3);
/// let (value, _) = tidal_flow(&mut net, 0, 2);
/// assert_eq!(value, 3);
/// ```
pub fn tidal_flow(net: &mut FlowNetwork, s: usize, t: usize) -> (Cap, FlowStats) {
    assert!(s < net.n && t < net.n && s != t);
    let mut stats = FlowStats::default();
    let mut total = 0;
    loop {
        let level = net.levels(s);
        stats.phases += 1;
        if level[t].is_none() {
            break;
        }
        // Multiple tides per level graph, like Dinic's blocking flow.
        loop {
            let pushed = tide(net, s, t, &level, &mut stats);
            if pushed == 0 {
                break;
            }
            stats.passes += 1;
            total += pushed;
        }
    }
    (total, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The CLRS classic: max flow 23.
    fn clrs() -> FlowNetwork {
        let mut f = FlowNetwork::new(6);
        f.add_edge(0, 1, 16);
        f.add_edge(0, 2, 13);
        f.add_edge(1, 3, 12);
        f.add_edge(2, 1, 4);
        f.add_edge(2, 4, 14);
        f.add_edge(3, 2, 9);
        f.add_edge(3, 5, 20);
        f.add_edge(4, 3, 7);
        f.add_edge(4, 5, 4);
        f
    }

    #[test]
    fn dinic_solves_clrs() {
        let mut f = clrs();
        let (v, _) = dinic(&mut f, 0, 5);
        assert_eq!(v, 23);
        assert!(f.check_feasible(0, 5, v));
    }

    #[test]
    fn tidal_solves_clrs() {
        let mut f = clrs();
        let (v, stats) = tidal_flow(&mut f, 0, 5);
        assert_eq!(v, 23);
        assert!(f.check_feasible(0, 5, v));
        assert!(stats.passes >= 1);
    }

    #[test]
    fn single_edge() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 7);
        assert_eq!(tidal_flow(&mut f, 0, 1).0, 7);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 5);
        assert_eq!(tidal_flow(&mut f, 0, 2).0, 0);
        let mut f2 = FlowNetwork::new(3);
        f2.add_edge(0, 1, 5);
        assert_eq!(dinic(&mut f2, 0, 2).0, 0);
    }

    #[test]
    fn parallel_and_antiparallel_edges() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 3);
        f.add_edge(0, 1, 4);
        f.add_edge(1, 0, 9); // antiparallel, irrelevant
        assert_eq!(tidal_flow(&mut f, 0, 1).0, 7);
    }

    #[test]
    fn bipartite_matching_as_flow() {
        // 3x3 bipartite: left {1,2,3}, right {4,5,6}; perfect matching
        // exists.
        let mut f = FlowNetwork::new(8);
        for l in 1..=3 {
            f.add_edge(0, l, 1);
            f.add_edge(l + 3, 7, 1);
        }
        for (l, r) in [(1, 4), (1, 5), (2, 5), (3, 5), (3, 6)] {
            f.add_edge(l, r, 1);
        }
        let (v, _) = tidal_flow(&mut f, 0, 7);
        assert_eq!(v, 3);
    }

    #[test]
    fn bottleneck_diamond() {
        // Two wide paths through a 1-capacity middle edge + direct routes.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 10);
        f.add_edge(0, 2, 10);
        f.add_edge(1, 2, 1);
        f.add_edge(1, 3, 10);
        f.add_edge(2, 3, 10);
        let mut f2 = f.clone();
        let mut f3 = f.clone();
        assert_eq!(tidal_flow(&mut f, 0, 3).0, dinic(&mut f2, 0, 3).0);
        assert_eq!(tidal_flow(&mut f3, 0, 3).0, 20);
    }

    #[test]
    fn tidal_matches_dinic_on_random_networks() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..25 {
            let n = rng.gen_range(4..20);
            let mut f = FlowNetwork::new(n);
            for _ in 0..rng.gen_range(n..4 * n) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    f.add_edge(u, v, rng.gen_range(1..30));
                }
            }
            let mut f2 = f.clone();
            let (tv, _) = tidal_flow(&mut f, 0, n - 1);
            let (dv, _) = dinic(&mut f2, 0, n - 1);
            assert_eq!(tv, dv, "trial {trial}");
            assert!(f.check_feasible(0, n - 1, tv), "trial {trial} infeasible");
        }
    }

    #[test]
    fn flow_value_matches_a_cut() {
        // Max-flow <= any cut; with the residual s-side cut it is equal.
        let mut f = clrs();
        let (v, _) = tidal_flow(&mut f, 0, 5);
        let level = f.levels(0);
        // Cut capacity: original caps of edges from reachable to
        // unreachable.
        let mut cut = 0;
        for e in (0..f.targets.len()).step_by(2) {
            let u = f.targets[e ^ 1] as usize;
            let w = f.targets[e] as usize;
            // Original capacity = residual + flow (reverse twin started 0).
            let orig_cap = f.caps[e] + f.caps[e ^ 1];
            if level[u].is_some() && level[w].is_none() {
                cut += orig_cap;
            }
        }
        assert_eq!(v, 23);
        // Max-flow–min-cut: the residual-reachability cut is tight.
        assert_eq!(cut, v, "cut {cut} vs flow {v}");
    }

    #[test]
    fn stats_count_work() {
        let mut f = clrs();
        let (_, stats) = tidal_flow(&mut f, 0, 5);
        assert!(stats.phases >= 2); // at least one productive + final check
        assert!(stats.edge_visits > 0);
    }
}

//! DIMACS shortest-path format I/O.
//!
//! Reads and writes the 9th DIMACS Implementation Challenge `.gr` format —
//! the de-facto interchange format for shortest-path benchmarks — so the
//! library's algorithms can run on standard road-network instances:
//!
//! ```text
//! c comment
//! p sp <nodes> <edges>
//! a <src> <dst> <length>      (1-based node ids)
//! ```

use crate::csr::{Graph, GraphBuilder, Len};
use std::fmt::Write as _;

/// Errors from DIMACS parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsError {
    /// The `p sp n m` problem line is missing or malformed.
    BadProblemLine(usize),
    /// A second `p` line appeared (would silently discard earlier arcs).
    DuplicateProblemLine(usize),
    /// An arc line failed to parse.
    BadArc(usize),
    /// A node id was 0 or exceeded the declared node count.
    NodeOutOfRange(usize),
    /// Arc count differs from the problem line's declaration.
    ArcCountMismatch {
        /// Declared in the `p` line.
        declared: usize,
        /// Actually present.
        found: usize,
    },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadProblemLine(l) => write!(f, "line {l}: malformed or missing 'p sp n m' line"),
            Self::DuplicateProblemLine(l) => write!(f, "line {l}: duplicate 'p' line"),
            Self::BadArc(l) => write!(f, "line {l}: malformed arc line"),
            Self::NodeOutOfRange(l) => write!(f, "line {l}: node id out of range"),
            Self::ArcCountMismatch { declared, found } => {
                write!(f, "declared {declared} arcs, found {found}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS `.gr` document into a [`Graph`] (node ids shift to
/// 0-based).
///
/// Tolerant of the variation found in files in the wild: `c` *and* `#`
/// comment lines, blank lines, leading/trailing whitespace, tab- or
/// multi-space-separated fields, and CRLF line endings. Every rejection
/// carries the 1-based line number of the offending line.
///
/// # Errors
/// Returns a [`DimacsError`] describing the first malformed line.
pub fn parse_dimacs(text: &str) -> Result<Graph, DimacsError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_arcs = 0usize;
    let mut found_arcs = 0usize;
    let mut n = 0usize;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        // `lines()` keeps the `\r` of CRLF endings; trim drops it along
        // with any indentation.
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(DimacsError::DuplicateProblemLine(lineno));
                }
                if parts.next() != Some("sp") {
                    return Err(DimacsError::BadProblemLine(lineno));
                }
                n = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(DimacsError::BadProblemLine(lineno))?;
                declared_arcs = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(DimacsError::BadProblemLine(lineno))?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or(DimacsError::BadProblemLine(lineno))?;
                let u: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(DimacsError::BadArc(lineno))?;
                let v: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(DimacsError::BadArc(lineno))?;
                let len: Len = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(DimacsError::BadArc(lineno))?;
                if u == 0 || v == 0 || u > n || v > n || len == 0 {
                    return Err(DimacsError::NodeOutOfRange(lineno));
                }
                b.add_edge(u - 1, v - 1, len);
                found_arcs += 1;
            }
            _ => return Err(DimacsError::BadArc(lineno)),
        }
    }
    if found_arcs != declared_arcs {
        return Err(DimacsError::ArcCountMismatch {
            declared: declared_arcs,
            found: found_arcs,
        });
    }
    Ok(builder.ok_or(DimacsError::BadProblemLine(0))?.build())
}

/// Serialises a graph as DIMACS `.gr` (1-based ids, stable edge order).
#[must_use]
pub fn to_dimacs(g: &Graph, comment: &str) -> String {
    let mut out = String::new();
    for line in comment.lines() {
        let _ = writeln!(out, "c {line}");
    }
    let _ = writeln!(out, "p sp {} {}", g.n(), g.m());
    for (u, v, len) in g.edges() {
        let _ = writeln!(out, "a {} {} {len}", u + 1, v + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SAMPLE: &str = "c tiny test graph\n\
                          p sp 4 5\n\
                          a 1 2 3\n\
                          a 2 3 4\n\
                          a 3 4 5\n\
                          a 1 3 10\n\
                          a 2 4 20\n";

    #[test]
    fn parses_the_sample() {
        let g = parse_dimacs(SAMPLE).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        let d = crate::dijkstra::dijkstra(&g, 0);
        assert_eq!(d.distances[3], Some(12)); // 3 + 4 + 5
    }

    #[test]
    fn roundtrip_preserves_graphs() {
        let mut rng = StdRng::seed_from_u64(111);
        let g = crate::generators::gnm(&mut rng, 20, 60, 1..=9);
        let text = to_dimacs(&g, "roundtrip");
        let back = parse_dimacs(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "c a\n\nc b\np sp 2 1\nc inline\na 1 2 7\n";
        let g = parse_dimacs(text).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn hash_comments_crlf_and_tabs_tolerated() {
        // The same graph as `comments_and_blank_lines_ignored`, but in the
        // messy shape real files arrive in: `#` comments, CRLF endings,
        // indentation, and tab-separated fields.
        let text = "# exported graph\r\n\r\nc legacy comment\r\n  p\tsp\t2\t1\r\n\ta 1\t2  7\r\n";
        let g = parse_dimacs(text).unwrap();
        assert_eq!((g.n(), g.m()), (2, 1));
        assert_eq!(g.edges().next(), Some((0, 1, 7)));
    }

    #[test]
    fn tolerant_forms_roundtrip() {
        // Parse a messy document, serialise it, parse the clean output:
        // both parses must agree.
        let messy = "# header\r\np sp 3 3\r\na 1 2 2\r\n\r\nc mid\r\na 2 3 4\r\na 1 3 9\r\n";
        let g = parse_dimacs(messy).unwrap();
        let back = parse_dimacs(&to_dimacs(&g, "clean")).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn rejects_duplicate_problem_line() {
        assert_eq!(
            parse_dimacs("p sp 2 1\na 1 2 3\np sp 4 0\n"),
            Err(DimacsError::DuplicateProblemLine(3))
        );
    }

    #[test]
    fn error_line_numbers_count_skipped_lines() {
        // Line numbers refer to the original document, comments and
        // blanks included.
        assert_eq!(
            parse_dimacs("# one\r\n\r\nc three\r\np sp 2 1\r\na 1 nope 3\r\n"),
            Err(DimacsError::BadArc(5))
        );
    }

    #[test]
    fn rejects_bad_problem_line() {
        assert_eq!(
            parse_dimacs("p max 3 2\n"),
            Err(DimacsError::BadProblemLine(1))
        );
        assert_eq!(
            parse_dimacs("a 1 2 3\n"),
            Err(DimacsError::BadProblemLine(1))
        );
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        assert_eq!(
            parse_dimacs("p sp 2 1\na 1 5 3\n"),
            Err(DimacsError::NodeOutOfRange(2))
        );
        assert_eq!(
            parse_dimacs("p sp 2 1\na 0 1 3\n"),
            Err(DimacsError::NodeOutOfRange(2))
        );
    }

    #[test]
    fn rejects_arc_count_mismatch() {
        assert_eq!(
            parse_dimacs("p sp 2 2\na 1 2 3\n"),
            Err(DimacsError::ArcCountMismatch {
                declared: 2,
                found: 1
            })
        );
    }

    #[test]
    fn rejects_garbage_lines() {
        assert_eq!(
            parse_dimacs("p sp 2 1\nx nonsense\na 1 2 3\n"),
            Err(DimacsError::BadArc(2))
        );
    }

    #[test]
    fn errors_display() {
        let e = DimacsError::ArcCountMismatch {
            declared: 5,
            found: 3,
        };
        assert!(e.to_string().contains("declared 5"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary text built from a printable-ish alphabet (covers control
    /// whitespace, digits, and the DIMACS keyword characters).
    fn arb_text() -> impl Strategy<Value = String> {
        proptest::collection::vec(0usize..96, 0..200).prop_map(|codes| {
            const ALPHABET: &[u8] = b" \t\r\n0123456789abcdefghijklmnopqrstuvwxyz\
                                      ABCDEFGHIJKLMNOPQRSTUVWXYZ.,:;-+_/\\#%()";
            codes
                .into_iter()
                .map(|c| ALPHABET[c % ALPHABET.len()] as char)
                .collect()
        })
    }

    /// One pseudo-DIMACS line: a header, an arc, a comment, or junk —
    /// the same shapes the original regex strategy produced.
    fn arb_line() -> impl Strategy<Value = String> {
        (0u8..4, 0u32..1000, 0u32..1000, 0u32..1000).prop_map(|(kind, a, b, c)| match kind {
            0 => format!("p sp {a} {b}"),
            1 => format!("a {a} {b} {c}"),
            2 => format!("c junk comment {a}"),
            _ => format!("{a} neither {b} keyword {c}"),
        })
    }

    proptest! {
        /// The parser must never panic, whatever bytes arrive.
        #[test]
        fn parser_never_panics(text in arb_text()) {
            let _ = parse_dimacs(&text);
        }

        /// Structured-ish fuzz: random line soup with valid-looking pieces.
        #[test]
        fn parser_never_panics_on_line_soup(
            lines in proptest::collection::vec(arb_line(), 0..20)
        ) {
            let _ = parse_dimacs(&lines.join("\n"));
        }

        /// Roundtrip: any generated graph survives serialise + parse.
        #[test]
        fn roundtrip_random_graphs(seed in 0u64..1000, n in 2usize..24) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = (n + seed as usize % (2 * n)).min(n * (n - 1));
            let g = crate::generators::gnm(&mut rng, n, m, 1..=9);
            let back = parse_dimacs(&to_dimacs(&g, "fuzz")).unwrap();
            prop_assert_eq!(g, back);
        }
    }
}

//! Path utilities: reconstruction from predecessor arrays and validation.

use crate::csr::{Graph, Len, Node};

/// Reconstructs the path `source -> ... -> v` from a predecessor array
/// (as produced by Dijkstra). Returns `None` if `v` has no recorded
/// predecessor chain reaching `source`.
#[must_use]
pub fn reconstruct(preds: &[Option<Node>], source: Node, v: Node) -> Option<Vec<Node>> {
    let mut path = vec![v];
    let mut cur = v;
    while cur != source {
        cur = preds[cur]?;
        path.push(cur);
        if path.len() > preds.len() {
            return None; // cycle guard: malformed predecessor array
        }
    }
    path.reverse();
    Some(path)
}

/// Sums the edge lengths along `path`, checking every consecutive pair is
/// an actual edge (taking the cheapest parallel edge). Returns `None` if
/// the path uses a non-edge.
#[must_use]
pub fn path_length(g: &Graph, path: &[Node]) -> Option<Len> {
    let mut total = 0;
    for w in path.windows(2) {
        let len = g
            .out_edges(w[0])
            .filter(|&(v, _)| v == w[1])
            .map(|(_, l)| l)
            .min()?;
        total += len;
    }
    Some(total)
}

/// Number of edges on a node path.
#[must_use]
pub fn hop_count(path: &[Node]) -> usize {
    path.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::dijkstra::dijkstra;

    #[test]
    fn reconstruct_and_measure() {
        let g = from_edges(4, &[(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 5)]);
        let r = dijkstra(&g, 0);
        let p = reconstruct(&r.preds, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 3]);
        assert_eq!(path_length(&g, &p), Some(4));
        assert_eq!(hop_count(&p), 2);
    }

    #[test]
    fn missing_pred_returns_none() {
        let preds = vec![None, None];
        assert_eq!(reconstruct(&preds, 0, 1), None);
    }

    #[test]
    fn trivial_path_to_source() {
        let preds = vec![None, None];
        assert_eq!(reconstruct(&preds, 0, 0), Some(vec![0]));
        let g = from_edges(1, &[]);
        assert_eq!(path_length(&g, &[0]), Some(0));
        assert_eq!(hop_count(&[0]), 0);
    }

    #[test]
    fn invalid_path_detected() {
        let g = from_edges(3, &[(0, 1, 1)]);
        assert_eq!(path_length(&g, &[0, 2]), None);
    }

    #[test]
    fn cyclic_preds_guarded() {
        let preds = vec![Some(1), Some(0)]; // 0 <-> 1 cycle, no source
        assert_eq!(reconstruct(&preds, 9, 0), None);
    }

    #[test]
    fn parallel_edges_use_cheapest() {
        let g = from_edges(2, &[(0, 1, 9), (0, 1, 3)]);
        assert_eq!(path_length(&g, &[0, 1]), Some(3));
    }
}

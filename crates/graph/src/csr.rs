//! Compressed-sparse-row directed graphs with positive integer lengths.

/// Node index. Graphs of up to `u32::MAX` nodes are supported internally;
/// the public API uses `usize` for ergonomics.
pub type Node = usize;

/// Edge length (the paper's `ℓ(uv)`): a positive integer. `U` denotes the
/// maximum length in a graph.
pub type Len = u64;

/// A directed graph in CSR form: out-edges of node `u` occupy a contiguous
/// slice, giving cache-friendly relaxation loops and O(1) degree queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>, // n + 1 entries
    targets: Vec<u32>,   // m entries
    lengths: Vec<Len>,   // m entries
    max_len: Len,
}

impl Graph {
    /// Number of nodes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.targets.len()
    }

    /// Largest edge length `U` (0 for an edgeless graph).
    #[must_use]
    pub fn max_len(&self) -> Len {
        self.max_len
    }

    /// Out-degree of `u`.
    #[must_use]
    pub fn out_degree(&self, u: Node) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Iterates over `(target, length)` pairs of `u`'s out-edges.
    pub fn out_edges(&self, u: Node) -> impl Iterator<Item = (Node, Len)> + '_ {
        let range = self.offsets[u]..self.offsets[u + 1];
        self.targets[range.clone()]
            .iter()
            .zip(&self.lengths[range])
            .map(|(&t, &l)| (t as Node, l))
    }

    /// Iterates over all edges as `(src, dst, length)`.
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node, Len)> + '_ {
        (0..self.n()).flat_map(move |u| self.out_edges(u).map(move |(v, l)| (u, v, l)))
    }

    /// In-degrees of all nodes (the paper's node-circuit sizes scale with
    /// `indeg(v)`).
    #[must_use]
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n()];
        for &t in &self.targets {
            deg[t as usize] += 1;
        }
        deg
    }

    /// Maximum degree Δ (max over nodes of out-degree; the §4.1 neuron
    /// bound uses the maximum degree of the input graph).
    #[must_use]
    pub fn max_out_degree(&self) -> usize {
        (0..self.n()).map(|u| self.out_degree(u)).max().unwrap_or(0)
    }

    /// Returns a copy with every edge length multiplied by `factor` —
    /// the §4.4 scaling step ("scale all edge lengths in G so that the
    /// smallest length is 2n").
    ///
    /// # Panics
    /// Panics on overflow or `factor == 0`.
    #[must_use]
    pub fn scale_lengths(&self, factor: Len) -> Graph {
        assert!(factor > 0);
        let lengths: Vec<Len> = self
            .lengths
            .iter()
            .map(|&l| l.checked_mul(factor).expect("length overflow"))
            .collect();
        Graph {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            max_len: self.max_len * factor,
            lengths,
        }
    }

    /// Smallest edge length (`None` for an edgeless graph).
    #[must_use]
    pub fn min_len(&self) -> Option<Len> {
        self.lengths.iter().copied().min()
    }

    /// Applies `f` to every edge length, returning a new graph (used by the
    /// §7 approximation algorithm's length rounding `ℓ_i`).
    #[must_use]
    pub fn map_lengths(&self, mut f: impl FnMut(Len) -> Len) -> Graph {
        let lengths: Vec<Len> = self.lengths.iter().map(|&l| f(l)).collect();
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        Graph {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            lengths,
            max_len,
        }
    }
}

/// Accumulates edges, then freezes them into a [`Graph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, Len)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "too many nodes");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the directed edge `u -> v` with positive length `len`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or `len == 0` (the paper's graphs
    /// have positive edge lengths; §7 additionally assumes ≥ 1).
    pub fn add_edge(&mut self, u: Node, v: Node, len: Len) -> &mut Self {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert!(len > 0, "edge lengths must be positive");
        self.edges.push((u as u32, v as u32, len));
        self
    }

    /// True if the edge `u -> v` was already added (O(m); for generators).
    #[must_use]
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.edges
            .iter()
            .any(|&(a, b, _)| a as usize == u && b as usize == v)
    }

    /// Number of edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into CSR form. Parallel edges are kept (they are harmless
    /// for shortest paths); edge order within a node follows insertion.
    #[must_use]
    pub fn build(mut self) -> Graph {
        let mut offsets = vec![0usize; self.n + 1];
        for &(u, _, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        // Stable counting sort by source.
        self.edges.sort_by_key(|&(u, _, _)| u);
        let targets: Vec<u32> = self.edges.iter().map(|&(_, v, _)| v).collect();
        let lengths: Vec<Len> = self.edges.iter().map(|&(_, _, l)| l).collect();
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        Graph {
            offsets,
            targets,
            lengths,
            max_len,
        }
    }
}

/// Convenience: builds a graph directly from an edge list.
#[must_use]
pub fn from_edges(n: usize, edges: &[(Node, Node, Len)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, l) in edges {
        b.add_edge(u, v, l);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        from_edges(4, &[(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 5)])
    }

    #[test]
    fn csr_layout_and_queries() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_len(), 5);
        assert_eq!(g.min_len(), Some(1));
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        let out0: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 2), (2, 1)]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = diamond();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 2), (0, 2, 1), (1, 3, 2), (2, 3, 5)]);
    }

    #[test]
    fn scale_lengths_multiplies_everything() {
        let g = diamond().scale_lengths(3);
        assert_eq!(g.min_len(), Some(3));
        assert_eq!(g.max_len(), 15);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn map_lengths_applies_function() {
        let g = diamond().map_lengths(|l| l.div_ceil(2));
        let out0: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 1), (2, 1)]);
        assert_eq!(g.max_len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(3, &[]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_len(), 0);
        assert_eq!(g.min_len(), None);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    fn parallel_edges_kept() {
        let g = from_edges(2, &[(0, 1, 3), (0, 1, 7)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn builder_has_edge() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        assert!(b.has_edge(0, 1));
        assert!(!b.has_edge(1, 0));
        assert_eq!(b.edge_count(), 1);
    }
}

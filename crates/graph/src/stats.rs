//! Graph statistics: the workload descriptors the paper's parameter
//! regimes are phrased in (`n`, `m`, `U`, `L`, `α`, Δ, density).

use crate::csr::{Graph, Len, Node};
use crate::dijkstra::dijkstra;

/// Summary statistics of a graph (from a given source's perspective for
/// the distance-dependent ones).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Nodes `n`.
    pub n: usize,
    /// Edges `m`.
    pub m: usize,
    /// Largest edge length `U`.
    pub u_max: Len,
    /// Smallest edge length.
    pub u_min: Option<Len>,
    /// Edge density `m / (n(n-1))`.
    pub density: f64,
    /// Maximum out-degree Δ.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Nodes reachable from the source.
    pub reachable: usize,
    /// `L`: the largest finite distance from the source (eccentricity).
    pub eccentricity: Option<Len>,
    /// `α` of the farthest node: hops on its shortest path.
    pub max_alpha: u32,
}

impl GraphStats {
    /// Computes statistics with distances taken from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn compute(g: &Graph, source: Node) -> Self {
        assert!(source < g.n(), "source out of range");
        let r = dijkstra(g, source);
        let reachable = r.distances.iter().flatten().count();
        let eccentricity = r.distances.iter().flatten().copied().max();
        let max_alpha = (0..g.n())
            .filter(|&v| r.distances[v].is_some())
            .map(|v| r.hops[v])
            .max()
            .unwrap_or(0);
        let n = g.n();
        let denom = (n.max(2) * (n.max(2) - 1)) as f64;
        Self {
            n,
            m: g.m(),
            u_max: g.max_len(),
            u_min: g.min_len(),
            density: g.m() as f64 / denom,
            max_out_degree: g.max_out_degree(),
            max_in_degree: g.in_degrees().into_iter().max().unwrap_or(0),
            reachable,
            eccentricity,
            max_alpha,
        }
    }

    /// The paper's pseudopolynomial sweet spot: is `L` small relative to
    /// `m` (Table 1's `L = o(m)` condition, evaluated concretely as
    /// `L < m`)?
    #[must_use]
    pub fn short_l_regime(&self) -> bool {
        self.eccentricity.is_some_and(|l| l < self.m as u64)
    }
}

/// Out-degree histogram: `hist[d]` = number of nodes with out-degree `d`.
#[must_use]
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = g.max_out_degree();
    let mut hist = vec![0usize; max + 1];
    for u in 0..g.n() {
        hist[g.out_degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diamond_stats() {
        let g = from_edges(4, &[(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 5)]);
        let s = GraphStats::compute(&g, 0);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 4);
        assert_eq!(s.u_max, 5);
        assert_eq!(s.u_min, Some(1));
        assert_eq!(s.reachable, 4);
        assert_eq!(s.eccentricity, Some(4));
        assert_eq!(s.max_alpha, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
    }

    #[test]
    fn regimes_classified() {
        let mut rng = StdRng::seed_from_u64(601);
        // Unit grid: short-L regime.
        let grid = crate::generators::grid2d(&mut rng, 8, 8, 1..=1);
        assert!(GraphStats::compute(&grid, 0).short_l_regime());
        // Heavy path: long-L regime.
        let path = crate::generators::path(&mut rng, 32, 100..=100);
        assert!(!GraphStats::compute(&path, 0).short_l_regime());
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let mut rng = StdRng::seed_from_u64(602);
        let g = crate::generators::gnm(&mut rng, 30, 90, 1..=4);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 30);
        let edges: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        assert_eq!(edges, 90);
    }

    #[test]
    fn empty_graph_stats() {
        let g = from_edges(1, &[]);
        let s = GraphStats::compute(&g, 0);
        assert_eq!(s.reachable, 1);
        assert_eq!(s.eccentricity, Some(0));
        assert_eq!(s.max_alpha, 0);
    }
}

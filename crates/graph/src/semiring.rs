//! Semirings for the paper's `A^k x` generalisation (§2.2).
//!
//! "By summing entries of A with message values on the edges and taking the
//! minimum of message values at the nodes, we obtain a well-known approach
//! for computing k-hop shortest paths. ... our techniques carry over to the
//! more general matrix-vector multiplication problem."
//!
//! A [`Semiring`] supplies the node combine (`add`) and edge transform
//! (`mul`); min-plus recovers shortest paths, plus-times recovers ordinary
//! linear algebra (counting walks, power iteration, etc.).

/// An algebraic semiring `(S, add, mul, zero, one)`.
pub trait Semiring {
    /// Element type (`'static` so matrix entries can be built generically).
    type Elem: Clone + PartialEq + std::fmt::Debug + 'static;
    /// Additive identity (`add(zero, x) = x`); also the "no path/empty"
    /// value.
    fn zero() -> Self::Elem;
    /// Multiplicative identity (`mul(one, x) = x`).
    fn one() -> Self::Elem;
    /// Node combine.
    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Edge transform.
    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// The tropical (min, +) semiring over `Option<u64>` lengths; `None` is
/// +∞ (the additive identity). `A^k x` under min-plus computes k-hop
/// shortest-path distances.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = Option<u64>;

    fn zero() -> Self::Elem {
        None
    }

    fn one() -> Self::Elem {
        Some(0)
    }

    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        match (a, b) {
            (Some(x), Some(y)) => Some(*x.min(y)),
            (Some(x), None) | (None, Some(x)) => Some(*x),
            (None, None) => None,
        }
    }

    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        match (a, b) {
            (Some(x), Some(y)) => Some(x + y),
            _ => None,
        }
    }
}

/// Ordinary (+, ×) arithmetic over `f64` — the deep-learning-style
/// matrix-vector product of the §2.2 NGA example.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type Elem = f64;

    fn zero() -> Self::Elem {
        0.0
    }

    fn one() -> Self::Elem {
        1.0
    }

    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        a + b
    }

    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        a * b
    }
}

/// The (or, and) Boolean semiring — `A^k x` computes k-step reachability.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type Elem = bool;

    fn zero() -> Self::Elem {
        false
    }

    fn one() -> Self::Elem {
        true
    }

    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        *a || *b
    }

    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        *a && *b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_axioms<S: Semiring>(samples: &[S::Elem]) {
        for a in samples {
            assert_eq!(&S::add(&S::zero(), a), a, "zero is additive identity");
            assert_eq!(&S::mul(&S::one(), a), a, "one is multiplicative identity");
            for b in samples {
                assert_eq!(S::add(a, b), S::add(b, a), "add commutes");
                for c in samples {
                    assert_eq!(
                        S::add(&S::add(a, b), c),
                        S::add(a, &S::add(b, c)),
                        "add associates"
                    );
                    assert_eq!(
                        S::mul(&S::mul(a, b), c),
                        S::mul(a, &S::mul(b, c)),
                        "mul associates"
                    );
                }
            }
        }
    }

    #[test]
    fn min_plus_axioms() {
        check_axioms::<MinPlus>(&[None, Some(0), Some(1), Some(7), Some(100)]);
    }

    #[test]
    fn bool_axioms() {
        check_axioms::<BoolOrAnd>(&[false, true]);
    }

    #[test]
    fn plus_times_behaves() {
        assert_eq!(PlusTimes::add(&2.0, &3.0), 5.0);
        assert_eq!(PlusTimes::mul(&2.0, &3.0), 6.0);
    }

    #[test]
    fn min_plus_infinity_absorbs_mul() {
        assert_eq!(MinPlus::mul(&None, &Some(3)), None);
        assert_eq!(MinPlus::mul(&Some(3), &None), None);
    }
}

//! Instrumented k-hop Bellman–Ford — the paper's conventional baseline for
//! hop-constrained shortest paths ("the best-known conventional algorithm
//! ... runs in O(km) time", §6.2).
//!
//! Round `i` computes `dist_i(v)`, the shortest length among paths from the
//! source using at most `i` edges, by relaxing every edge:
//! `dist_i(v) ← min{ dist_{i−1}(v), dist_{i−1}(u) + ℓ(uv) }`.
//!
//! Path reconstruction keeps a per-round predecessor table — the classical
//! analogue of the paper's §4.3 observation that constructing (rather than
//! just measuring) k-hop paths costs an extra `O(k)` storage factor.

use crate::csr::{Graph, Len, Node};

/// Result of a k-hop Bellman–Ford run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BellmanFordResult {
    /// `distances[v]` = `dist_k(v)`: shortest length over paths with at
    /// most `k` edges, `None` if no such path exists.
    pub distances: Vec<Option<Len>>,
    /// Rounds actually executed (equals `k` in faithful mode; may be fewer
    /// with `early_exit` when distances stabilise).
    pub rounds: u32,
    /// Total edge relaxations performed (`k · m` in faithful mode) — the
    /// measured counterpart of the `O(km)` bound.
    pub relaxations: u64,
    /// Per-round predecessor table (present only when paths were
    /// requested): `pred_table[i][v]` is the in-neighbour through which
    /// `dist_{i+1}(v)` was improved in round `i+1`, or `None` if round
    /// `i+1` left `v` unchanged.
    pred_table: Option<Vec<Vec<Option<u32>>>>,
}

impl BellmanFordResult {
    /// Reconstructs an optimal ≤k-hop path from the source to `v`, as a
    /// node sequence starting at the source. Returns `None` if `v` is
    /// unreachable within the hop budget or paths were not recorded.
    #[must_use]
    pub fn path_to(&self, source: Node, v: Node) -> Option<Vec<Node>> {
        let table = self.pred_table.as_ref()?;
        self.distances[v]?;
        let mut path = vec![v];
        let mut cur = v;
        let mut round = table.len();
        // Walk backward: find the latest round ≤ current in which `cur`
        // was improved; its predecessor is the previous path node.
        while cur != source {
            let mut stepped = false;
            while round > 0 {
                round -= 1;
                if let Some(p) = table[round][cur] {
                    cur = p as Node;
                    path.push(cur);
                    stepped = true;
                    break;
                }
            }
            if !stepped {
                return None; // inconsistent table (cannot happen for reachable v)
            }
        }
        path.reverse();
        Some(path)
    }
}

/// Runs k-hop Bellman–Ford from `source`, relaxing all `m` edges in each of
/// the `k` rounds, exactly as the paper's §6.2 algorithm does.
///
/// # Examples
/// ```
/// use sgl_graph::csr::from_edges;
/// // Cheap 2-hop route vs expensive direct edge.
/// let g = from_edges(3, &[(0, 2, 9), (0, 1, 1), (1, 2, 1)]);
/// assert_eq!(sgl_graph::bellman_ford::bellman_ford_khop(&g, 0, 1).distances[2], Some(9));
/// assert_eq!(sgl_graph::bellman_ford::bellman_ford_khop(&g, 0, 2).distances[2], Some(2));
/// ```
///
/// # Panics
/// Panics if `source >= g.n()`.
#[must_use]
pub fn bellman_ford_khop(g: &Graph, source: Node, k: u32) -> BellmanFordResult {
    run(g, source, k, false, false)
}

/// Like [`bellman_ford_khop`] but records the per-round predecessor table
/// so optimal ≤k-hop paths can be reconstructed (`O(kn)` extra memory).
#[must_use]
pub fn bellman_ford_khop_with_paths(g: &Graph, source: Node, k: u32) -> BellmanFordResult {
    run(g, source, k, false, true)
}

/// Like [`bellman_ford_khop`] but stops as soon as a round changes nothing
/// (a standard optimisation; changes `rounds`/`relaxations`, never the
/// distances — a stabilised front stays stable).
#[must_use]
pub fn bellman_ford_khop_early_exit(g: &Graph, source: Node, k: u32) -> BellmanFordResult {
    run(g, source, k, true, false)
}

fn run(g: &Graph, source: Node, k: u32, early_exit: bool, record_paths: bool) -> BellmanFordResult {
    assert!(source < g.n(), "source out of range");
    let n = g.n();
    let mut dist: Vec<Option<Len>> = vec![None; n];
    dist[source] = Some(0);

    let mut relaxations = 0u64;
    let mut rounds = 0u32;
    let mut pred_table: Vec<Vec<Option<u32>>> = Vec::new();
    let mut next = dist.clone();
    for _ in 0..k {
        rounds += 1;
        let mut round_preds = record_paths.then(|| vec![None; n]);
        let mut changed = false;
        for u in 0..n {
            let Some(du) = dist[u] else {
                relaxations += g.out_degree(u) as u64;
                continue;
            };
            for (v, len) in g.out_edges(u) {
                relaxations += 1;
                let nd = du + len;
                if next[v].is_none_or(|old| nd < old) {
                    next[v] = Some(nd);
                    if let Some(p) = &mut round_preds {
                        p[v] = Some(u as u32);
                    }
                    changed = true;
                }
            }
        }
        dist.copy_from_slice(&next);
        if let Some(p) = round_preds {
            pred_table.push(p);
        }
        if early_exit && !changed {
            break;
        }
    }

    BellmanFordResult {
        distances: dist,
        rounds,
        relaxations,
        pred_table: record_paths.then_some(pred_table),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::dijkstra::dijkstra;
    use crate::paths::path_length;

    /// A graph where the cheapest path needs many hops: direct expensive
    /// edge 0 -> 3 (len 10) vs 3-hop path of length 3.
    fn hoppy() -> Graph {
        from_edges(4, &[(0, 3, 10), (0, 1, 1), (1, 2, 1), (2, 3, 1)])
    }

    #[test]
    fn hop_limit_changes_answer() {
        let g = hoppy();
        assert_eq!(bellman_ford_khop(&g, 0, 1).distances[3], Some(10));
        assert_eq!(bellman_ford_khop(&g, 0, 2).distances[3], Some(10));
        assert_eq!(bellman_ford_khop(&g, 0, 3).distances[3], Some(3));
    }

    #[test]
    fn zero_hops_only_source() {
        let g = hoppy();
        let r = bellman_ford_khop(&g, 0, 0);
        assert_eq!(r.distances[0], Some(0));
        assert!(r.distances[1..].iter().all(Option::is_none));
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn k_equals_n_minus_one_matches_dijkstra() {
        let g = hoppy();
        let bf = bellman_ford_khop(&g, 0, 3);
        let dj = dijkstra(&g, 0);
        assert_eq!(bf.distances, dj.distances);
    }

    #[test]
    fn faithful_mode_does_km_relaxations() {
        let g = hoppy();
        let r = bellman_ford_khop(&g, 0, 3);
        assert_eq!(r.relaxations, 3 * g.m() as u64);
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn early_exit_stops_but_agrees() {
        let g = hoppy();
        let full = bellman_ford_khop(&g, 0, 100);
        let fast = bellman_ford_khop_early_exit(&g, 0, 100);
        assert_eq!(full.distances, fast.distances);
        assert!(fast.rounds < full.rounds);
    }

    #[test]
    fn per_round_frontier_semantics() {
        // Path 0 -> 1 -> 2: after round 1, node 2 must still be unreachable
        // via dist_1 (needs two hops).
        let g = from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let r1 = bellman_ford_khop(&g, 0, 1);
        assert_eq!(r1.distances, vec![Some(0), Some(1), None]);
        let r2 = bellman_ford_khop(&g, 0, 2);
        assert_eq!(r2.distances, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn uses_fewer_hops_when_cheaper() {
        // 2-hop path costs 2, 1-hop edge costs 1: k=2 must pick cost 1.
        let g = from_edges(3, &[(0, 2, 1), (0, 1, 1), (1, 2, 1)]);
        assert_eq!(bellman_ford_khop(&g, 0, 2).distances[2], Some(1));
    }

    #[test]
    fn path_reconstruction_respects_hop_budget() {
        let g = hoppy();
        // k = 2: must take the direct edge (path 0 -> 3).
        let r2 = bellman_ford_khop_with_paths(&g, 0, 2);
        let p2 = r2.path_to(0, 3).unwrap();
        assert_eq!(p2, vec![0, 3]);
        assert_eq!(path_length(&g, &p2), Some(10));
        // k = 3: the cheap 3-hop path.
        let r3 = bellman_ford_khop_with_paths(&g, 0, 3);
        let p3 = r3.path_to(0, 3).unwrap();
        assert_eq!(p3, vec![0, 1, 2, 3]);
        assert_eq!(path_length(&g, &p3), Some(3));
    }

    #[test]
    fn paths_unavailable_without_recording() {
        let g = hoppy();
        let r = bellman_ford_khop(&g, 0, 3);
        assert_eq!(r.path_to(0, 3), None);
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let g = from_edges(3, &[(0, 1, 1)]);
        let r = bellman_ford_khop_with_paths(&g, 0, 2);
        assert_eq!(r.path_to(0, 2), None);
    }

    #[test]
    fn reconstructed_path_length_matches_distance() {
        // Random-ish fixed graph: check the invariant on every node.
        let g = from_edges(
            6,
            &[
                (0, 1, 4),
                (0, 2, 1),
                (2, 1, 1),
                (1, 3, 7),
                (2, 3, 9),
                (3, 4, 1),
                (2, 4, 20),
                (4, 5, 1),
                (0, 5, 30),
            ],
        );
        for k in 1..=5u32 {
            let r = bellman_ford_khop_with_paths(&g, 0, k);
            for v in 0..g.n() {
                if let Some(d) = r.distances[v] {
                    let p = r.path_to(0, v).unwrap();
                    assert!(p.len() as u32 - 1 <= k, "k={k} v={v} path {p:?}");
                    assert_eq!(path_length(&g, &p), Some(d), "k={k} v={v}");
                }
            }
        }
    }
}

//! Instrumented binary-heap Dijkstra — the paper's conventional SSSP
//! baseline ("best-known conventional: `O(m + n log n)`", Table 1; we use
//! the standard binary-heap variant, `O((m + n) log n)`, and report
//! measured elementary operations rather than asymptotics).

use crate::csr::{Graph, Len, Node};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a Dijkstra run, with operation counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DijkstraResult {
    /// `distances[v]` = length of the shortest path from the source, or
    /// `None` if unreachable.
    pub distances: Vec<Option<Len>>,
    /// `preds[v]` = predecessor of `v` on a shortest path.
    pub preds: Vec<Option<Node>>,
    /// Hop count of the shortest path tree: `hops[v]` = number of edges on
    /// the recorded shortest path (the paper's `α` when `v` is the sink).
    pub hops: Vec<u32>,
    /// Heap pushes performed.
    pub heap_pushes: u64,
    /// Heap pops performed (including stale entries).
    pub heap_pops: u64,
    /// Edge relaxations attempted.
    pub relaxations: u64,
}

impl DijkstraResult {
    /// Total elementary operations: each heap touch is charged `log2` of
    /// the heap bound `n`, each relaxation 1 — the measured counterpart of
    /// `O((m + n) log n)`.
    #[must_use]
    pub fn ops(&self, n: usize) -> u64 {
        let log_n = usize::BITS as u64 - u64::from((n.max(2) - 1).leading_zeros());
        (self.heap_pushes + self.heap_pops) * log_n + self.relaxations
    }
}

/// Runs Dijkstra from `source` over the whole graph.
///
/// # Examples
/// ```
/// use sgl_graph::csr::from_edges;
/// let g = from_edges(3, &[(0, 1, 4), (1, 2, 1), (0, 2, 9)]);
/// let r = sgl_graph::dijkstra::dijkstra(&g, 0);
/// assert_eq!(r.distances, vec![Some(0), Some(4), Some(5)]);
/// ```
///
/// # Panics
/// Panics if `source >= g.n()`.
#[must_use]
pub fn dijkstra(g: &Graph, source: Node) -> DijkstraResult {
    dijkstra_to(g, source, None)
}

/// Runs Dijkstra from `source`, stopping early once `target` (if given) is
/// settled — the single-destination setting of Table 1.
#[must_use]
pub fn dijkstra_to(g: &Graph, source: Node, target: Option<Node>) -> DijkstraResult {
    assert!(source < g.n(), "source out of range");
    let n = g.n();
    let mut dist: Vec<Option<Len>> = vec![None; n];
    let mut preds: Vec<Option<Node>> = vec![None; n];
    let mut hops: Vec<u32> = vec![0; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Len, u32)>> = BinaryHeap::new();

    let mut result = DijkstraResult {
        distances: Vec::new(),
        preds: Vec::new(),
        hops: Vec::new(),
        heap_pushes: 0,
        heap_pops: 0,
        relaxations: 0,
    };

    dist[source] = Some(0);
    heap.push(Reverse((0, source as u32)));
    result.heap_pushes += 1;

    while let Some(Reverse((d, u))) = heap.pop() {
        result.heap_pops += 1;
        let u = u as Node;
        if settled[u] {
            continue; // stale entry
        }
        settled[u] = true;
        if target == Some(u) {
            break;
        }
        for (v, len) in g.out_edges(u) {
            result.relaxations += 1;
            let nd = d + len;
            if dist[v].is_none_or(|old| nd < old) {
                dist[v] = Some(nd);
                preds[v] = Some(u);
                hops[v] = hops[u] + 1;
                heap.push(Reverse((nd, v as u32)));
                result.heap_pushes += 1;
            }
        }
    }

    result.distances = dist;
    result.preds = preds;
    result.hops = hops;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    #[test]
    fn diamond_distances() {
        let g = from_edges(4, &[(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 5)]);
        let r = dijkstra(&g, 0);
        assert_eq!(r.distances, vec![Some(0), Some(2), Some(1), Some(4)]);
        assert_eq!(r.preds[3], Some(1));
        assert_eq!(r.hops[3], 2);
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let g = from_edges(3, &[(0, 1, 1)]);
        let r = dijkstra(&g, 0);
        assert_eq!(r.distances[2], None);
        assert_eq!(r.preds[2], None);
    }

    #[test]
    fn early_exit_settles_target() {
        let g = from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let r = dijkstra_to(&g, 0, Some(1));
        assert_eq!(r.distances[1], Some(1));
        // Node 3 may be unexplored after early exit.
        assert!(r.distances[3].is_none());
    }

    #[test]
    fn counters_are_plausible() {
        let g = from_edges(4, &[(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 5)]);
        let r = dijkstra(&g, 0);
        assert_eq!(r.relaxations, 4); // every edge relaxed once
        assert!(r.heap_pushes >= 4);
        assert!(r.ops(4) > 0);
    }

    #[test]
    fn chooses_shorter_of_parallel_edges() {
        let g = from_edges(2, &[(0, 1, 9), (0, 1, 3)]);
        let r = dijkstra(&g, 0);
        assert_eq!(r.distances[1], Some(3));
    }

    #[test]
    fn self_source_distance_zero() {
        let g = from_edges(1, &[]);
        let r = dijkstra(&g, 0);
        assert_eq!(r.distances, vec![Some(0)]);
    }

    #[test]
    fn long_cycle_distances() {
        // Directed cycle 0 -> 1 -> ... -> 9 -> 0, unit lengths.
        let edges: Vec<(usize, usize, u64)> = (0..10).map(|i| (i, (i + 1) % 10, 1)).collect();
        let g = from_edges(10, &edges);
        let r = dijkstra(&g, 0);
        for v in 0..10 {
            assert_eq!(r.distances[v], Some(v as u64));
        }
        assert_eq!(r.hops[9], 9);
    }
}

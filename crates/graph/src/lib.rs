//! # sgl-graph — conventional graph substrate and baselines
//!
//! The classical side of the paper's comparison: compact CSR digraphs with
//! positive integer edge lengths, deterministic workload generators, and
//! the two conventional algorithms the paper benchmarks against —
//! binary-heap Dijkstra (`O(m + n log n)` class) and k-hop Bellman–Ford
//! (`O(km)`) — instrumented with elementary-operation counters so their
//! work can be compared against neuromorphic time steps under the paper's
//! "ignoring data-movement costs" regime (Table 1, lower half). The
//! DISTANCE-metered variants (data-movement regime) live in `sgl-distance`.
//!
//! Also provides the semiring sparse matrix–vector machinery underlying the
//! paper's `A^k x` generalisation (§2.2): k-hop shortest paths are min-plus
//! matrix powers applied to an indicator vector.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Indexed loops over several parallel per-node arrays are the house style
// for the graph/neuron kernels here; iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod bellman_ford;
pub mod csr;
pub mod dijkstra;
pub mod flow;
pub mod generators;
pub mod io;
pub mod matvec;
pub mod paths;
pub mod semiring;
pub mod stats;

pub use bellman_ford::{bellman_ford_khop, BellmanFordResult};
pub use csr::{Graph, GraphBuilder, Len, Node};
pub use dijkstra::{dijkstra, DijkstraResult};

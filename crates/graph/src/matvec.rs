//! Semiring sparse matrix–vector products: the conventional baseline for
//! the §2.2 `A^k x` NGA example.
//!
//! A graph *is* its adjacency matrix: `A[u][v] = ℓ(uv)` under min-plus, or
//! an arbitrary weight under plus-times (we reuse the integer edge length
//! as the matrix entry; callers needing real weights can map lengths).
//! `spmv` computes `y = x A` (messages flow along edge direction:
//! `y[v] = ⊕_u x[u] ⊗ A[u][v]`), and `power` iterates it `k` times — each
//! iteration is one NGA round.

use crate::csr::Graph;
use crate::semiring::Semiring;

/// One semiring sparse matrix–vector product along edge direction.
/// Returns the result and the number of semiring multiplications (= `m`).
pub fn spmv<S: Semiring>(g: &Graph, x: &[S::Elem]) -> (Vec<S::Elem>, u64) {
    assert_eq!(x.len(), g.n(), "vector length must equal node count");
    let mut y = vec![S::zero(); g.n()];
    let mut muls = 0u64;
    for u in 0..g.n() {
        for (v, len) in g.out_edges(u) {
            let contribution = S::mul(&x[u], &edge_elem::<S>(len));
            y[v] = S::add(&y[v], &contribution);
            muls += 1;
        }
    }
    (y, muls)
}

/// `A^k x` by repeated [`spmv`]; returns the final vector and total
/// multiplication count (`k · m`).
pub fn power<S: Semiring>(g: &Graph, x: &[S::Elem], k: u32) -> (Vec<S::Elem>, u64) {
    let mut v = x.to_vec();
    let mut total = 0;
    for _ in 0..k {
        let (next, muls) = spmv::<S>(g, &v);
        v = next;
        total += muls;
    }
    (v, total)
}

/// k-hop distances via min-plus matrix powers, *including* shorter-hop
/// paths: `dist_k = ⊕_{i≤k} (A^i x)` — implemented by augmenting each
/// round with the identity (keep your own value), which is exactly the
/// Bellman–Ford recurrence.
#[must_use]
pub fn minplus_khop_distances(g: &Graph, source: usize, k: u32) -> Vec<Option<u64>> {
    use crate::semiring::MinPlus;
    let mut x: Vec<Option<u64>> = vec![None; g.n()];
    x[source] = Some(0);
    for _ in 0..k {
        let (y, _) = spmv::<MinPlus>(g, &x);
        for (xi, yi) in x.iter_mut().zip(y) {
            *xi = MinPlus::add(xi, &yi);
        }
    }
    x
}

/// Converts an integer edge length into a semiring element. Min-plus uses
/// the length itself; other semirings interpret it numerically.
fn edge_elem<S: Semiring>(len: u64) -> S::Elem {
    // Build `len` as a semiring element: fold `one + one + ...` would be
    // O(len); instead we rely on the concrete types we ship. This is a
    // small, closed set — a trait method would force every semiring to
    // define a u64 embedding even when meaningless.
    use std::any::TypeId;
    let t = TypeId::of::<S::Elem>();
    if t == TypeId::of::<Option<u64>>() {
        // min-plus: the length itself.
        let v: Box<dyn std::any::Any> = Box::new(Some(len));
        *v.downcast::<S::Elem>().expect("type checked above")
    } else if t == TypeId::of::<f64>() {
        let v: Box<dyn std::any::Any> = Box::new(len as f64);
        *v.downcast::<S::Elem>().expect("type checked above")
    } else if t == TypeId::of::<bool>() {
        let v: Box<dyn std::any::Any> = Box::new(true);
        *v.downcast::<S::Elem>().expect("type checked above")
    } else {
        panic!("unsupported semiring element type")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::semiring::{BoolOrAnd, MinPlus, PlusTimes};

    fn hoppy() -> Graph {
        from_edges(4, &[(0, 3, 10), (0, 1, 1), (1, 2, 1), (2, 3, 1)])
    }

    #[test]
    fn minplus_power_matches_bellman_ford() {
        let g = hoppy();
        for k in 0..=4u32 {
            let mv = minplus_khop_distances(&g, 0, k);
            let bf = crate::bellman_ford::bellman_ford_khop(&g, 0, k);
            assert_eq!(mv, bf.distances, "k = {k}");
        }
    }

    #[test]
    fn bool_power_is_khop_reachability() {
        let g = from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let mut x = vec![false; 4];
        x[0] = true;
        let (r1, _) = power::<BoolOrAnd>(&g, &x, 1);
        assert_eq!(r1, vec![false, true, false, false]);
        let (r3, _) = power::<BoolOrAnd>(&g, &x, 3);
        assert_eq!(r3, vec![false, false, false, true]);
    }

    #[test]
    fn plus_times_counts_weighted_walks() {
        // 0 -> 1 (len 2), 0 -> 2 (len 3), 1 -> 3 (len 4), 2 -> 3 (len 5):
        // (A^2 x)[3] with x = e0 is 2*4 + 3*5 = 23.
        let g = from_edges(4, &[(0, 1, 2), (0, 2, 3), (1, 3, 4), (2, 3, 5)]);
        let mut x = vec![0.0; 4];
        x[0] = 1.0;
        let (r, muls) = power::<PlusTimes>(&g, &x, 2);
        assert_eq!(r[3], 23.0);
        assert_eq!(muls, 2 * g.m() as u64);
    }

    #[test]
    fn spmv_counts_m_multiplications() {
        let g = hoppy();
        let x = vec![Some(0); 4];
        let (_, muls) = spmv::<MinPlus>(&g, &x);
        assert_eq!(muls, g.m() as u64);
    }

    #[test]
    fn zero_vector_stays_zero() {
        let g = hoppy();
        let x: Vec<Option<u64>> = vec![None; 4];
        let (y, _) = spmv::<MinPlus>(&g, &x);
        assert!(y.iter().all(Option::is_none));
    }
}

//! Deterministic workload generators for the paper's experiments.
//!
//! Every generator takes an explicit RNG so each table regenerates
//! byte-identically from a seed. Edge lengths are drawn uniformly from a
//! caller-supplied inclusive range, letting experiments control the
//! paper's `U` (maximum edge length) parameter independently of topology.

use crate::csr::{Graph, GraphBuilder, Len, Node};
use rand::Rng;
use std::collections::HashSet;
use std::ops::RangeInclusive;

fn draw(rng: &mut impl Rng, lens: &RangeInclusive<Len>) -> Len {
    rng.gen_range(lens.clone())
}

/// Erdős–Rényi G(n, m): exactly `m` distinct directed edges (no self
/// loops, no parallel edges), lengths uniform in `lens`.
///
/// # Panics
/// Panics if `m > n(n-1)` or `n == 0`.
#[must_use]
pub fn gnm(rng: &mut impl Rng, n: usize, m: usize, lens: RangeInclusive<Len>) -> Graph {
    assert!(n > 0);
    assert!(m <= n * (n - 1), "m too large for a simple digraph");
    let mut b = GraphBuilder::new(n);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    while seen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && seen.insert((u as u32, v as u32)) {
            b.add_edge(u, v, draw(rng, &lens));
        }
    }
    b.build()
}

/// `G(n, m)` guaranteed connected from node 0: a random spanning arborescence
/// first (each node `v > 0` gets an in-edge from a random earlier node),
/// then random extra edges up to `m`.
///
/// # Panics
/// Panics if `m < n - 1` or `m > n(n-1)`.
#[must_use]
pub fn gnm_connected(rng: &mut impl Rng, n: usize, m: usize, lens: RangeInclusive<Len>) -> Graph {
    assert!(n > 0 && m >= n - 1, "need at least n-1 edges");
    assert!(m <= n * (n - 1), "m too large for a simple digraph");
    let mut b = GraphBuilder::new(n);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    for v in 1..n {
        let u = rng.gen_range(0..v);
        seen.insert((u as u32, v as u32));
        b.add_edge(u, v, draw(rng, &lens));
    }
    while seen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && seen.insert((u as u32, v as u32)) {
            b.add_edge(u, v, draw(rng, &lens));
        }
    }
    b.build()
}

/// The complete digraph `K_n` with random lengths — the worst case the
/// §4.4 embedding is analysed for.
#[must_use]
pub fn complete(rng: &mut impl Rng, n: usize, lens: RangeInclusive<Len>) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_edge(u, v, draw(rng, &lens));
            }
        }
    }
    b.build()
}

/// A directed path `0 -> 1 -> ... -> n-1`; distances grow linearly, giving
/// the large-`L` regime where delay-encoded algorithms are stressed.
#[must_use]
pub fn path(rng: &mut impl Rng, n: usize, lens: RangeInclusive<Len>) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n.saturating_sub(1) {
        b.add_edge(u, u + 1, draw(rng, &lens));
    }
    b.build()
}

/// A directed cycle on `n` nodes.
#[must_use]
pub fn cycle(rng: &mut impl Rng, n: usize, lens: RangeInclusive<Len>) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        b.add_edge(u, (u + 1) % n, draw(rng, &lens));
    }
    b.build()
}

/// A bidirected 2-D grid of `rows x cols` nodes — the small-diameter,
/// small-`L` workload where the pseudopolynomial spiking algorithms shine
/// (Table 1: "better when paths are short compared to the graph size").
#[must_use]
pub fn grid2d(rng: &mut impl Rng, rows: usize, cols: usize, lens: RangeInclusive<Len>) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), draw(rng, &lens));
                b.add_edge(id(r, c + 1), id(r, c), draw(rng, &lens));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), draw(rng, &lens));
                b.add_edge(id(r + 1, c), id(r, c), draw(rng, &lens));
            }
        }
    }
    b.build()
}

/// A layered DAG: `layers` layers of `width` nodes; every node of layer i
/// connects to `fanout` random nodes of layer i+1. Shortest paths have
/// exactly `layers - 1` hops, making the k-hop crossover sharp.
#[must_use]
pub fn layered(
    rng: &mut impl Rng,
    layers: usize,
    width: usize,
    fanout: usize,
    lens: RangeInclusive<Len>,
) -> Graph {
    assert!(layers >= 1 && width >= 1);
    let fanout = fanout.min(width);
    let n = layers * width;
    let mut b = GraphBuilder::new(n);
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            let u = layer * width + i;
            let mut picked = HashSet::new();
            while picked.len() < fanout {
                let j = rng.gen_range(0..width);
                if picked.insert(j) {
                    b.add_edge(u, (layer + 1) * width + j, draw(rng, &lens));
                }
            }
        }
    }
    b.build()
}

/// A unit-length path with `extra` random long "chord" edges whose length
/// exceeds the path distance between their endpoints — so the shortest
/// path still follows the spine (large `L`, large `α`) while `m` grows.
/// Workload for the pseudopolynomial rows of Table 1.
#[must_use]
pub fn path_with_chords(rng: &mut impl Rng, n: usize, extra: usize) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::new(n);
    for u in 0..n - 1 {
        b.add_edge(u, u + 1, 1);
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n - 1);
        let v = rng.gen_range(u + 1..n);
        // Longer than the spine distance, so it never helps.
        b.add_edge(u, v, (v - u) as Len + rng.gen_range(1..=4));
    }
    b.build()
}

/// Every node gets exactly `d` random distinct out-neighbours — the
/// bounded-degree regime (Δ = d) the §4.1 neuron bound references.
#[must_use]
pub fn out_regular(rng: &mut impl Rng, n: usize, d: usize, lens: RangeInclusive<Len>) -> Graph {
    assert!(d < n, "degree must be below n");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        let mut picked = HashSet::new();
        while picked.len() < d {
            let v = rng.gen_range(0..n);
            if v != u && picked.insert(v) {
                b.add_edge(u, v, draw(rng, &lens));
            }
        }
    }
    b.build()
}

/// A star: node 0 connects to every other node and back. Diameter 2.
#[must_use]
pub fn star(rng: &mut impl Rng, n: usize, lens: RangeInclusive<Len>) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v, draw(rng, &lens));
        b.add_edge(v, 0, draw(rng, &lens));
    }
    b.build()
}

/// Watts–Strogatz small world: a bidirected ring lattice (each node linked
/// to `k/2` neighbours on each side) with each edge's far endpoint rewired
/// with probability `beta`. Small diameter with high clustering — the
/// "brain-like" topology regime the paper's scalability discussion evokes.
///
/// # Panics
/// Panics unless `2 <= k < n` and `k` is even.
#[must_use]
pub fn small_world(
    rng: &mut impl Rng,
    n: usize,
    k: usize,
    beta: f64,
    lens: RangeInclusive<Len>,
) -> Graph {
    assert!(
        k >= 2 && k.is_multiple_of(2) && k < n,
        "need even 2 <= k < n"
    );
    let mut b = GraphBuilder::new(n);
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for u in 0..n {
        for off in 1..=(k / 2) {
            let mut v = (u + off) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform random non-self target.
                for _ in 0..8 {
                    let cand = rng.gen_range(0..n);
                    if cand != u && !seen.contains(&(u, cand)) {
                        v = cand;
                        break;
                    }
                }
            }
            if u != v && seen.insert((u, v)) {
                let len = draw(rng, &lens);
                b.add_edge(u, v, len);
                if seen.insert((v, u)) {
                    b.add_edge(v, u, len);
                }
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: nodes arrive one at a time and
/// attach `attach` bidirected edges to existing nodes with probability
/// proportional to degree. Produces the heavy-tailed degree distributions
/// real networks (and connectomes) show.
///
/// # Panics
/// Panics unless `1 <= attach < n`.
#[must_use]
pub fn scale_free(rng: &mut impl Rng, n: usize, attach: usize, lens: RangeInclusive<Len>) -> Graph {
    assert!(attach >= 1 && attach < n);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<usize> = Vec::new();
    // Seed clique among the first `attach + 1` nodes.
    for u in 0..=attach {
        for v in 0..u {
            let len = draw(rng, &lens);
            b.add_edge(u, v, len);
            b.add_edge(v, u, len);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (attach + 1)..n {
        let mut picked = HashSet::new();
        let mut order = Vec::with_capacity(attach);
        while picked.len() < attach {
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if v != u && picked.insert(v) {
                // Keep insertion order: iterating the HashSet directly
                // would make edge order (and drawn lengths) depend on the
                // hasher's random state, breaking seed determinism.
                order.push(v);
            }
        }
        for &v in &order {
            let len = draw(rng, &lens);
            b.add_edge(u, v, len);
            b.add_edge(v, u, len);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    b.build()
}

/// A random DAG: edges only from lower- to higher-numbered nodes, each
/// present with probability `p`. Hop counts are bounded by `n - 1` and
/// topological structure is explicit — handy for k-hop edge cases.
#[must_use]
pub fn random_dag(rng: &mut impl Rng, n: usize, p: f64, lens: RangeInclusive<Len>) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v, draw(rng, &lens));
            }
        }
    }
    b.build()
}

/// A complete bipartite digraph `K_{a,b}` (edges both ways), a stress case
/// for the in-degree-proportional node circuits of §4.5.
#[must_use]
pub fn complete_bipartite(
    rng: &mut impl Rng,
    a: usize,
    bn: usize,
    lens: RangeInclusive<Len>,
) -> Graph {
    let mut b = GraphBuilder::new(a + bn);
    for u in 0..a {
        for v in a..(a + bn) {
            b.add_edge(u, v, draw(rng, &lens));
            b.add_edge(v, u, draw(rng, &lens));
        }
    }
    b.build()
}

/// Picks the farthest reachable node from `source` (by hop count, then by
/// node id) — a canonical "single destination" for Table 1 experiments.
#[must_use]
pub fn far_node(g: &Graph, source: Node) -> Node {
    let r = crate::dijkstra::dijkstra(g, source);
    (0..g.n())
        .filter(|&v| r.distances[v].is_some())
        .max_by_key(|&v| (r.hops[v], v))
        .unwrap_or(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnm_counts_and_bounds() {
        let g = gnm(&mut rng(1), 20, 60, 3..=9);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 60);
        assert!(g.min_len().unwrap() >= 3 && g.max_len() <= 9);
        // No self loops.
        assert!(g.edges().all(|(u, v, _)| u != v));
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = gnm(&mut rng(7), 16, 40, 1..=5);
        let b = gnm(&mut rng(7), 16, 40, 1..=5);
        assert_eq!(a, b);
        let c = gnm(&mut rng(8), 16, 40, 1..=5);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_connected_reaches_everything() {
        let g = gnm_connected(&mut rng(3), 30, 60, 1..=10);
        let r = crate::dijkstra::dijkstra(&g, 0);
        assert!(r.distances.iter().all(Option::is_some));
        assert_eq!(g.m(), 60);
    }

    #[test]
    fn complete_has_all_pairs() {
        let g = complete(&mut rng(2), 6, 1..=1);
        assert_eq!(g.m(), 30);
        assert_eq!(g.max_out_degree(), 5);
    }

    #[test]
    fn path_distances_are_prefix_sums() {
        let g = path(&mut rng(4), 5, 2..=2);
        let r = crate::dijkstra::dijkstra(&g, 0);
        assert_eq!(
            r.distances,
            vec![Some(0), Some(2), Some(4), Some(6), Some(8)]
        );
    }

    #[test]
    fn cycle_wraps() {
        let g = cycle(&mut rng(5), 4, 1..=1);
        assert_eq!(g.m(), 4);
        let r = crate::dijkstra::dijkstra(&g, 2);
        assert_eq!(r.distances[1], Some(3));
    }

    #[test]
    fn grid_structure() {
        let g = grid2d(&mut rng(6), 3, 4, 1..=1);
        assert_eq!(g.n(), 12);
        // 2 * (rows*(cols-1) + (rows-1)*cols) directed edges.
        assert_eq!(g.m(), 2 * (3 * 3 + 2 * 4));
        let r = crate::dijkstra::dijkstra(&g, 0);
        assert_eq!(r.distances[11], Some(5)); // Manhattan distance
    }

    #[test]
    fn layered_hops_are_exact() {
        let g = layered(&mut rng(7), 5, 4, 2, 1..=3);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 * 2);
        let r = crate::dijkstra::dijkstra(&g, 0);
        for v in 16..20 {
            if r.distances[v].is_some() {
                assert_eq!(r.hops[v], 4);
            }
        }
    }

    #[test]
    fn chords_never_shorten_the_spine() {
        let g = path_with_chords(&mut rng(8), 40, 60);
        let r = crate::dijkstra::dijkstra(&g, 0);
        for v in 0..40 {
            assert_eq!(r.distances[v], Some(v as u64), "spine distance at {v}");
        }
        assert_eq!(g.m(), 39 + 60);
    }

    #[test]
    fn out_regular_degrees() {
        let g = out_regular(&mut rng(9), 15, 4, 1..=2);
        for u in 0..15 {
            assert_eq!(g.out_degree(u), 4);
        }
    }

    #[test]
    fn star_diameter_two() {
        let g = star(&mut rng(10), 8, 1..=1);
        let r = crate::dijkstra::dijkstra(&g, 3);
        assert!(r.distances.iter().all(|d| d.unwrap() <= 2));
    }

    #[test]
    fn small_world_is_connected_and_small_diameter() {
        let g = small_world(&mut rng(20), 64, 4, 0.1, 1..=1);
        let r = crate::dijkstra::dijkstra(&g, 0);
        assert!(r.distances.iter().all(Option::is_some), "connected");
        let diameter = r.distances.iter().flatten().max().unwrap();
        // Ring lattice diameter would be 16; rewiring shrinks it.
        assert!(*diameter <= 16, "diameter {diameter}");
    }

    #[test]
    fn scale_free_has_heavy_tail() {
        let g = scale_free(&mut rng(21), 200, 2, 1..=3);
        let mut degs: Vec<usize> = (0..g.n()).map(|u| g.out_degree(u)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs: the top node's degree far exceeds the minimum.
        assert!(degs[0] >= 4 * 2, "max degree {}", degs[0]);
        assert!(degs[degs.len() - 1] >= 2);
    }

    #[test]
    fn random_dag_is_acyclic() {
        let g = random_dag(&mut rng(22), 30, 0.2, 1..=5);
        assert!(g.edges().all(|(u, v, _)| u < v));
        // DAG: distances from 0 computable, no infinite loops possible by
        // construction; spot check monotone reachability.
        let r = crate::dijkstra::dijkstra(&g, 0);
        assert_eq!(r.distances[0], Some(0));
    }

    #[test]
    fn complete_bipartite_degrees() {
        let g = complete_bipartite(&mut rng(23), 3, 5, 1..=1);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 2 * 3 * 5);
        for u in 0..3 {
            assert_eq!(g.out_degree(u), 5);
        }
        for v in 3..8 {
            assert_eq!(g.out_degree(v), 3);
        }
    }

    #[test]
    fn far_node_finds_deep_target() {
        let g = path(&mut rng(11), 10, 1..=1);
        assert_eq!(far_node(&g, 0), 9);
    }
}

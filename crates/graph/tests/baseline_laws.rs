//! Laws relating the conventional baselines to each other, property
//! tested: Dijkstra is the k→∞ limit of Bellman–Ford, flow duality on the
//! residual cut, and semiring mat-vec ↔ Bellman–Ford agreement.

use proptest::prelude::*;
use sgl_graph::csr::from_edges;
use sgl_graph::flow::{dinic, tidal_flow, FlowNetwork};
use sgl_graph::matvec::minplus_khop_distances;
use sgl_graph::{bellman_ford, dijkstra, Graph};

fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1u64..10), 1..(3 * n)).prop_map(move |edges| {
            let edges: Vec<_> = edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            if edges.is_empty() {
                from_edges(n, &[(0, 1 % n.max(2), 1)])
            } else {
                from_edges(n, &edges)
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// dist_{n-1} == Dijkstra distances (simple shortest paths need at
    /// most n-1 edges).
    #[test]
    fn bellman_ford_converges_to_dijkstra(g in graph_strategy(14)) {
        let k = (g.n() - 1) as u32;
        let bf = bellman_ford::bellman_ford_khop(&g, 0, k.max(1));
        let dj = dijkstra::dijkstra(&g, 0);
        prop_assert_eq!(bf.distances, dj.distances);
    }

    /// Min-plus matrix powers implement the same recurrence.
    #[test]
    fn matvec_is_bellman_ford(g in graph_strategy(12), k in 0u32..10) {
        let mv = minplus_khop_distances(&g, 0, k);
        let bf = bellman_ford::bellman_ford_khop(&g, 0, k);
        prop_assert_eq!(mv, bf.distances);
    }

    /// Tidal flow and Dinic agree, and both produce feasible flows.
    #[test]
    fn maxflow_algorithms_agree(
        n in 3usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12, 1u64..25), 1..30),
    ) {
        let mut f = FlowNetwork::new(n);
        for (u, v, c) in edges {
            if u < n && v < n && u != v {
                f.add_edge(u, v, c);
            }
        }
        let mut f1 = f.clone();
        let mut f2 = f;
        let (tv, _) = tidal_flow(&mut f1, 0, n - 1);
        let (dv, _) = dinic(&mut f2, 0, n - 1);
        prop_assert_eq!(tv, dv);
        prop_assert!(f1.check_feasible(0, n - 1, tv));
        prop_assert!(f2.check_feasible(0, n - 1, dv));
    }

    /// Early-exit Bellman–Ford never changes answers.
    #[test]
    fn early_exit_is_sound(g in graph_strategy(12), k in 1u32..20) {
        let full = bellman_ford::bellman_ford_khop(&g, 0, k);
        let fast = bellman_ford::bellman_ford_khop_early_exit(&g, 0, k);
        prop_assert_eq!(full.distances, fast.distances);
        prop_assert!(fast.rounds <= full.rounds);
    }

    /// Dijkstra with an early target agrees on that target.
    #[test]
    fn target_mode_agrees(g in graph_strategy(12)) {
        let full = dijkstra::dijkstra(&g, 0);
        for t in 0..g.n() {
            let early = dijkstra::dijkstra_to(&g, 0, Some(t));
            prop_assert_eq!(early.distances[t], full.distances[t], "target {}", t);
        }
    }
}

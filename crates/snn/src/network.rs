//! The spiking neural network container (Definition 3 of the paper).

use std::sync::OnceLock;

use crate::error::SnnError;
use crate::params::LifParams;
use crate::types::NeuronId;

/// A directed synapse with programmable weight and integer delay (≥ 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Synapse {
    /// Post-synaptic neuron.
    pub target: NeuronId,
    /// Synaptic weight `w_ij ∈ ℝ` (negative = inhibitory).
    pub weight: f64,
    /// Synaptic delay `d_ij ∈ ℕ, d_ij >= 1`, in time steps.
    pub delay: u32,
}

/// Flat compressed-sparse-row view of a network's synapse table.
///
/// `offsets` has `n + 1` entries; the outgoing synapses of neuron `i` are
/// the contiguous slice `synapses[offsets[i]..offsets[i + 1]]`, in the
/// order the edges were `connect`ed. Engines iterate this instead of the
/// build-side `Vec<Vec<Synapse>>` so spike routing walks one flat array
/// (one cache stream) rather than chasing a pointer per neuron.
///
/// Invariants: `offsets` is non-decreasing, `offsets[0] == 0`,
/// `offsets[n] == synapses.len() == Network::synapse_count()`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CsrTopology {
    offsets: Vec<usize>,
    synapses: Vec<Synapse>,
}

impl CsrTopology {
    /// Assembles a topology from pre-sorted parts — the bulk compiler's
    /// entry point ([`crate::builder::NetworkBuilder`] counting-sorts
    /// straight into these arrays; no per-neuron allocations, no
    /// build-side adjacency ever exists).
    pub(crate) fn from_parts(offsets: Vec<usize>, synapses: Vec<Synapse>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(*offsets.last().unwrap(), synapses.len());
        Self { offsets, synapses }
    }

    /// Resident bytes of the two flat arrays.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.synapses.capacity() * std::mem::size_of::<Synapse>()
    }

    fn build(adjacency: &[Vec<Synapse>]) -> Self {
        let total = adjacency.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(adjacency.len() + 1);
        let mut synapses = Vec::with_capacity(total);
        offsets.push(0);
        for row in adjacency {
            synapses.extend_from_slice(row);
            offsets.push(synapses.len());
        }
        Self { offsets, synapses }
    }

    /// Outgoing synapses of neuron `i` (dense index).
    #[inline]
    #[must_use]
    pub fn out(&self, i: usize) -> &[Synapse] {
        &self.synapses[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Every synapse in the network as one flat slice.
    #[inline]
    #[must_use]
    pub fn all(&self) -> &[Synapse] {
        &self.synapses
    }
}

/// One delay bucket of a [`BitplaneTopology`]: the synapses of a single
/// source that share one in-horizon delay, as a `start..end` range into the
/// flat target/weight arrays.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DelayBucket {
    /// The shared synaptic delay (`1..=horizon`).
    pub(crate) delay: u32,
    /// Start of the bucket's synapses in `targets`/`weights`.
    pub(crate) start: usize,
    /// One past the bucket's last synapse.
    pub(crate) end: usize,
}

/// Delay-bucketed view of the synapse table for the bit-plane engine.
///
/// The bit-plane engine keeps spike frontiers as `u64` bit-planes in a
/// ring buffer and, at step `t`, delivers the arrivals due from each plane
/// still inside the delay horizon. That inverts the time wheel's layout:
/// instead of "which deliveries land at `t`" it asks "which synapses of
/// source `s` have delay `t - t_fire`" — so this snapshot groups each
/// source's in-horizon synapses into per-delay buckets (delays ascending,
/// CSR order preserved within a bucket, which keeps floating-point
/// accumulation order — and therefore whole `RunResult`s — bit-identical
/// to the wheel-based engines).
///
/// Two delivery modes hang off the same buckets:
///
/// * **Gather** (always available) — walk a bucket's target/weight pairs
///   and accumulate `f64` synaptic input, exactly like the wheel drain.
/// * **OR-mask** — when every neuron has `v_reset == 0`,
///   `v_threshold >= 0`, and every synapse weight strictly exceeds its
///   target's threshold, a neuron fires iff at least one arrival lands on
///   it and membrane voltages are identically zero between events. Spike
///   propagation then reduces to OR-ing each bucket's precomputed target
///   bitmask into the step's fired plane — no floating point at all. The
///   masks are materialised only for such networks, and only while small
///   and dense enough to beat the gather (see [`Self::uses_masks`]).
///
/// Synapses with delays beyond the wheel horizon ([`HORIZON_CAP`]) go to a
/// per-source overflow list; the engine parks them in an ordered map just
/// as the wheel does, so both engines classify every delivery identically.
///
/// Built lazily by [`Network::bitplane`] (like the CSR snapshot) and
/// invalidated by any topology mutation.
#[derive(Clone, Debug)]
pub struct BitplaneTopology {
    /// Delay horizon: `clamp(max_delay, 1, HORIZON_CAP)` — identical to
    /// the time wheel's slot count for the same network.
    pub(crate) horizon: u32,
    /// `u64` words per bit-plane: `ceil(n / 64)`.
    pub(crate) words: usize,
    /// `n + 1` offsets into `buckets`; source `i`'s delay buckets are
    /// `buckets[bucket_offsets[i]..bucket_offsets[i + 1]]`.
    pub(crate) bucket_offsets: Vec<usize>,
    /// All delay buckets, grouped by source, delays ascending per source.
    pub(crate) buckets: Vec<DelayBucket>,
    /// Flat bucket-ordered synapse targets (dense neuron indices).
    pub(crate) targets: Vec<u32>,
    /// Flat bucket-ordered synapse weights (parallel to `targets`).
    pub(crate) weights: Vec<f64>,
    /// Per-source in-horizon out-degree (sum of its bucket sizes).
    pub(crate) horizon_degree: Vec<u32>,
    /// `n + 1` offsets into `overflow`.
    pub(crate) overflow_offsets: Vec<usize>,
    /// Beyond-horizon synapses per source, in CSR order:
    /// `(delay, target, weight)`.
    pub(crate) overflow: Vec<(u32, NeuronId, f64)>,
    /// Per-bucket target bitmasks (`buckets.len() * words` words), present
    /// only in OR-mask mode.
    pub(crate) masks: Option<Vec<u64>>,
}

/// Upper bound on the resident bytes of the optional per-bucket target
/// masks; above it the topology stays in gather mode regardless of
/// density ("CSR-gather fallback for large graphs").
const MASK_BYTES_CAP: usize = 1 << 24; // 16 MiB

impl BitplaneTopology {
    pub(crate) fn build(csr: &CsrTopology, params: &[LifParams], max_delay: u32) -> Self {
        let n = params.len();
        let horizon =
            u32::try_from((max_delay as usize).clamp(1, crate::engine::wheel::HORIZON_CAP))
                .expect("HORIZON_CAP fits in u32");
        let words = n.div_ceil(64);

        let mut bucket_offsets = Vec::with_capacity(n + 1);
        let mut buckets = Vec::new();
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        let mut horizon_degree = vec![0u32; n];
        let mut overflow_offsets = Vec::with_capacity(n + 1);
        let mut overflow = Vec::new();
        // OR-mask eligibility: voltages provably pinned at zero between
        // events, every arrival fires its target (see type-level docs).
        let mut or_eligible = params
            .iter()
            .all(|p| p.v_reset == 0.0 && p.v_threshold >= 0.0);

        bucket_offsets.push(0);
        overflow_offsets.push(0);
        // (delay, CSR position) per in-horizon synapse of one source; the
        // CSR position tiebreak makes the sort a stable partition, so CSR
        // relative order survives within each bucket.
        let mut row: Vec<(u32, usize)> = Vec::new();
        for i in 0..n {
            row.clear();
            for (k, s) in csr.out(i).iter().enumerate() {
                or_eligible &= s.weight > params[s.target.index()].v_threshold;
                if s.delay <= horizon {
                    row.push((s.delay, k));
                } else {
                    overflow.push((s.delay, s.target, s.weight));
                }
            }
            row.sort_unstable();
            horizon_degree[i] = row.len() as u32;
            let out = csr.out(i);
            let mut j = 0;
            while j < row.len() {
                let delay = row[j].0;
                let start = targets.len();
                while j < row.len() && row[j].0 == delay {
                    let s = &out[row[j].1];
                    targets.push(s.target.0);
                    weights.push(s.weight);
                    j += 1;
                }
                buckets.push(DelayBucket {
                    delay,
                    start,
                    end: targets.len(),
                });
            }
            bucket_offsets.push(buckets.len());
            overflow_offsets.push(overflow.len());
        }

        // Mask mode pays `words` OR-ops per (fired source, delay) bucket
        // where the gather pays `bucket len` adds: worth it only for
        // eligible networks whose buckets are reasonably full (avg bucket
        // length >= words / 8 — OR words are SIMD-wide), and only while
        // the mask table stays small.
        let use_masks = or_eligible
            && !buckets.is_empty()
            && targets.len() * 8 >= buckets.len() * words
            && buckets.len().saturating_mul(words).saturating_mul(8) <= MASK_BYTES_CAP;
        let masks = use_masks.then(|| {
            let mut m = vec![0u64; buckets.len() * words];
            for (b, bucket) in buckets.iter().enumerate() {
                let plane = &mut m[b * words..(b + 1) * words];
                for &t in &targets[bucket.start..bucket.end] {
                    plane[(t >> 6) as usize] |= 1u64 << (t & 63);
                }
            }
            m
        });

        Self {
            horizon,
            words,
            bucket_offsets,
            buckets,
            targets,
            weights,
            horizon_degree,
            overflow_offsets,
            overflow,
            masks,
        }
    }

    /// Delay horizon shared with the time wheel.
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Whether spike propagation runs in OR-mask mode (see type docs).
    #[must_use]
    pub fn uses_masks(&self) -> bool {
        self.masks.is_some()
    }

    /// Number of synapses whose delay exceeds the horizon (these take the
    /// ordered-map overflow path, exactly like the wheel's).
    #[must_use]
    pub fn overflow_synapses(&self) -> usize {
        self.overflow.len()
    }

    /// Resident heap bytes of this snapshot (all capacities counted).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.bucket_offsets.capacity() * size_of::<usize>()
            + self.buckets.capacity() * size_of::<DelayBucket>()
            + self.targets.capacity() * size_of::<u32>()
            + self.weights.capacity() * size_of::<f64>()
            + self.horizon_degree.capacity() * size_of::<u32>()
            + self.overflow_offsets.capacity() * size_of::<usize>()
            + self.overflow.capacity() * size_of::<(u32, NeuronId, f64)>()
            + self
                .masks
                .as_ref()
                .map_or(0, |m| m.capacity() * size_of::<u64>())
    }
}

/// A spiking neural network: a directed graph (cycles and self-loops
/// allowed) whose vertices are LIF neurons and whose edges are synapses.
///
/// Designated subsets of neurons act as *inputs* (spikes may be induced in
/// them at `t = 0`), *outputs* (their firing state is read out when the
/// computation terminates), and an optional *terminal* neuron whose first
/// spike ends the computation (Definition 3).
///
/// Construction has two paths:
///
/// * **Incremental** — [`Network::connect`] appends to a per-neuron
///   adjacency list (cheap single-edge edits); the engines read through
///   [`Network::csr`], a flat CSR snapshot built lazily on first use and
///   invalidated by any topology mutation. [`Network::freeze`] drops the
///   build-side adjacency once the CSR exists, halving resident synapse
///   memory for a network that is done being built.
/// * **Bulk** — [`crate::builder::NetworkBuilder`] stages edges in one
///   flat buffer and counting-sorts them straight into the CSR arrays;
///   the resulting network is *born frozen* and the adjacency list never
///   materialises. This is the fast path for mass construction
///   (graph → SNN compilation).
///
/// A frozen network is read-only through the cheap accessors; any
/// mutation ([`Network::connect`], [`Network::add_neuron`],
/// [`Network::synapses_from_mut`]) transparently [`Network::thaw`]s it
/// back into adjacency-list form first (one O(m) copy), so the two
/// representations are observationally identical.
#[derive(Clone, Debug, Default)]
pub struct Network {
    params: Vec<LifParams>,
    /// Build-side adjacency; empty (never allocated) while `frozen`.
    synapses: Vec<Vec<Synapse>>,
    csr: OnceLock<CsrTopology>,
    /// Bit-plane engine snapshot, derived from the CSR on first use and
    /// invalidated together with it.
    bitplane: OnceLock<BitplaneTopology>,
    /// When set, `csr` is the authoritative topology and `synapses` is
    /// dropped.
    frozen: bool,
    inputs: Vec<NeuronId>,
    outputs: Vec<NeuronId>,
    terminal: Option<NeuronId>,
    synapse_count: usize,
    max_delay: u32,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network pre-sized for `neurons` neurons.
    #[must_use]
    pub fn with_capacity(neurons: usize) -> Self {
        Self {
            params: Vec::with_capacity(neurons),
            synapses: Vec::with_capacity(neurons),
            ..Self::default()
        }
    }

    /// Assembles a *born-frozen* network from bulk-compiled parts: the CSR
    /// is authoritative from the start and the build-side adjacency never
    /// exists. Callers ([`crate::builder::NetworkBuilder::build`]) have
    /// already validated every synapse.
    pub(crate) fn from_frozen(
        params: Vec<LifParams>,
        csr: CsrTopology,
        inputs: Vec<NeuronId>,
        outputs: Vec<NeuronId>,
        terminal: Option<NeuronId>,
        max_delay: u32,
    ) -> Self {
        let synapse_count = csr.all().len();
        let lock = OnceLock::new();
        lock.set(csr).expect("fresh lock");
        Self {
            params,
            synapses: Vec::new(),
            csr: lock,
            bitplane: OnceLock::new(),
            frozen: true,
            inputs,
            outputs,
            terminal,
            synapse_count,
            max_delay,
        }
    }

    /// Adds a neuron with the given parameters and returns its id.
    pub fn add_neuron(&mut self, params: LifParams) -> NeuronId {
        debug_assert!(params.validate().is_ok(), "invalid LIF parameters");
        self.thaw();
        let id = NeuronId(u32::try_from(self.params.len()).expect("more than u32::MAX neurons"));
        self.params.push(params);
        self.synapses.push(Vec::new());
        self.csr.take();
        self.bitplane.take();
        id
    }

    /// Adds `count` neurons sharing the same parameters; returns their ids.
    ///
    /// Reserves capacity for all `count` neurons up front and invalidates
    /// the cached CSR snapshot once, not per neuron.
    pub fn add_neurons(&mut self, params: LifParams, count: usize) -> Vec<NeuronId> {
        debug_assert!(params.validate().is_ok(), "invalid LIF parameters");
        self.thaw();
        self.csr.take();
        self.bitplane.take();
        self.params.reserve(count);
        self.synapses.reserve(count);
        let start = self.params.len();
        u32::try_from(start + count).expect("more than u32::MAX neurons");
        let ids = (start..start + count).map(|i| NeuronId(i as u32)).collect();
        for _ in 0..count {
            self.params.push(params);
            self.synapses.push(Vec::new());
        }
        ids
    }

    /// Connects `src -> dst` with the given weight and delay.
    ///
    /// # Errors
    /// Rejects unknown endpoints, zero delays and non-finite weights.
    pub fn connect(
        &mut self,
        src: NeuronId,
        dst: NeuronId,
        weight: f64,
        delay: u32,
    ) -> Result<(), SnnError> {
        if src.index() >= self.params.len() {
            return Err(SnnError::UnknownNeuron(src));
        }
        if dst.index() >= self.params.len() {
            return Err(SnnError::UnknownNeuron(dst));
        }
        if delay == 0 {
            return Err(SnnError::ZeroDelay { src, dst });
        }
        if !weight.is_finite() {
            return Err(SnnError::NonFiniteWeight { src, dst });
        }
        self.thaw();
        self.synapses[src.index()].push(Synapse {
            target: dst,
            weight,
            delay,
        });
        self.csr.take();
        self.bitplane.take();
        self.synapse_count += 1;
        self.max_delay = self.max_delay.max(delay);
        Ok(())
    }

    /// Flat CSR view of the synapse table, built on first use and cached
    /// until the topology next changes. Engines route spikes through this.
    /// For a frozen network the CSR *is* the topology — no build, no copy.
    #[must_use]
    pub fn csr(&self) -> &CsrTopology {
        self.csr.get_or_init(|| CsrTopology::build(&self.synapses))
    }

    /// Delay-bucketed bit-plane snapshot of the synapse table (see
    /// [`BitplaneTopology`]), built from the CSR on first use and cached
    /// until the topology next changes. The bit-plane engine routes spikes
    /// through this.
    ///
    /// Built lazily — not eagerly by [`Self::freeze`] — so networks that
    /// never run on the bit-plane engine pay nothing for it; once built it
    /// is counted by [`Self::memory_bytes`].
    #[must_use]
    pub fn bitplane(&self) -> &BitplaneTopology {
        self.bitplane
            .get_or_init(|| BitplaneTopology::build(self.csr(), &self.params, self.max_delay))
    }

    /// Builds the CSR snapshot (if not already cached) and **drops the
    /// build-side adjacency**, roughly halving resident synapse memory.
    /// Call when construction is done and the network will be simulated
    /// (possibly many times) but not edited. Mutations after `freeze` are
    /// still legal — they [`Self::thaw`] first (one O(m) copy).
    pub fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        if self.csr.get().is_none() {
            let built = CsrTopology::build(&self.synapses);
            self.csr.set(built).expect("csr lock checked empty");
        }
        self.synapses = Vec::new();
        self.frozen = true;
    }

    /// Rematerialises the build-side adjacency from the CSR and leaves the
    /// frozen state; a no-op on non-frozen networks. Mutating accessors
    /// call this implicitly, so it rarely needs calling by hand.
    pub fn thaw(&mut self) {
        if !self.frozen {
            return;
        }
        let csr = self.csr.take().expect("frozen implies a resident CSR");
        self.bitplane.take();
        self.synapses = (0..self.params.len())
            .map(|i| csr.out(i).to_vec())
            .collect();
        self.frozen = false;
    }

    /// Whether the CSR is authoritative and the build-side adjacency has
    /// been dropped (see [`Self::freeze`]).
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Approximate resident heap bytes of the topology: parameters,
    /// build-side adjacency (rows + per-row buffers), the cached CSR and
    /// bit-plane snapshots, and the designation lists — all counted at
    /// `Vec` capacity, not length. The figure the `compile` bench reports
    /// to show what [`Self::freeze`] / bulk construction save.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = self.params.capacity() * size_of::<LifParams>();
        total += self.synapses.capacity() * size_of::<Vec<Synapse>>();
        for row in &self.synapses {
            total += row.capacity() * size_of::<Synapse>();
        }
        if let Some(csr) = self.csr.get() {
            total += csr.memory_bytes();
        }
        if let Some(bp) = self.bitplane.get() {
            total += bp.memory_bytes();
        }
        total += (self.inputs.capacity() + self.outputs.capacity()) * size_of::<NeuronId>();
        total
    }

    /// Outgoing synapses of dense index `i`, from whichever representation
    /// is live.
    #[inline]
    fn row(&self, i: usize) -> &[Synapse] {
        if self.frozen {
            self.csr
                .get()
                .expect("frozen implies a resident CSR")
                .out(i)
        } else {
            &self.synapses[i]
        }
    }

    /// All neuron parameters as one dense slice (indexable by
    /// [`NeuronId::index`]) — the engines' per-neuron lookup path.
    #[inline]
    #[must_use]
    pub fn params_slice(&self) -> &[LifParams] {
        &self.params
    }

    /// Number of neurons (`n` in the paper's complexity bounds).
    #[must_use]
    pub fn neuron_count(&self) -> usize {
        self.params.len()
    }

    /// Number of synapses.
    #[must_use]
    pub fn synapse_count(&self) -> usize {
        self.synapse_count
    }

    /// Largest synaptic delay in the network (0 for an edgeless network).
    #[must_use]
    pub fn max_delay(&self) -> u32 {
        self.max_delay
    }

    /// Parameters of neuron `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a neuron of this network.
    #[must_use]
    pub fn params(&self, id: NeuronId) -> &LifParams {
        &self.params[id.index()]
    }

    /// Mutable parameters of neuron `id` (reprogramming a deployed net).
    pub fn params_mut(&mut self, id: NeuronId) -> &mut LifParams {
        &mut self.params[id.index()]
    }

    /// Outgoing synapses of neuron `id`.
    #[must_use]
    pub fn synapses_from(&self, id: NeuronId) -> &[Synapse] {
        self.row(id.index())
    }

    /// Mutable outgoing synapses of neuron `id` — used by the crossbar
    /// embedder to re-program delays in place (§4.4). Invalidates the
    /// cached CSR view (thawing a frozen network first).
    pub fn synapses_from_mut(&mut self, id: NeuronId) -> &mut [Synapse] {
        self.thaw();
        self.csr.take();
        self.bitplane.take();
        &mut self.synapses[id.index()]
    }

    /// Iterates over all neuron ids.
    pub fn neuron_ids(&self) -> impl Iterator<Item = NeuronId> + '_ {
        (0..self.params.len()).map(|i| NeuronId(i as u32))
    }

    /// Marks `id` as an input neuron (idempotent).
    pub fn mark_input(&mut self, id: NeuronId) {
        if !self.inputs.contains(&id) {
            self.inputs.push(id);
        }
    }

    /// Marks `id` as an output neuron (idempotent).
    pub fn mark_output(&mut self, id: NeuronId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Designates the terminal neuron `u_t` whose first spike ends the
    /// computation (Definition 3).
    pub fn set_terminal(&mut self, id: NeuronId) {
        self.terminal = Some(id);
    }

    /// The designated input neurons `I ⊆ N`.
    #[must_use]
    pub fn inputs(&self) -> &[NeuronId] {
        &self.inputs
    }

    /// The designated output neurons `O ⊆ N`.
    #[must_use]
    pub fn outputs(&self) -> &[NeuronId] {
        &self.outputs
    }

    /// The designated terminal neuron, if any.
    #[must_use]
    pub fn terminal(&self) -> Option<NeuronId> {
        self.terminal
    }

    /// In-degrees of every neuron (useful for circuit-size accounting:
    /// the paper's node circuits scale with `indeg(v)`).
    #[must_use]
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.params.len()];
        for i in 0..self.params.len() {
            for s in self.row(i) {
                deg[s.target.index()] += 1;
            }
        }
        deg
    }

    /// Largest absolute synaptic weight (circuit analyses in §5 distinguish
    /// polynomially- from exponentially-bounded weights).
    #[must_use]
    pub fn max_abs_weight(&self) -> f64 {
        (0..self.params.len())
            .flat_map(|i| self.row(i))
            .map(|s| s.weight.abs())
            .fold(0.0, f64::max)
    }

    /// Checks every neuron and synapse for model validity; additionally
    /// verifies the event-engine precondition when `for_event_engine`.
    ///
    /// `connect` already rejects zero delays and non-finite weights, but
    /// [`Self::synapses_from_mut`] permits in-place re-programming that
    /// bypasses those checks, so the engines re-validate here before a run
    /// rather than silently mis-scheduling corrupted synapses.
    pub fn validate(&self, for_event_engine: bool) -> Result<(), SnnError> {
        for (i, p) in self.params.iter().enumerate() {
            p.validate()?;
            if for_event_engine && !p.is_input_driven() {
                return Err(SnnError::SpontaneousNeuron(NeuronId(i as u32)));
            }
        }
        for i in 0..self.params.len() {
            let src = NeuronId(i as u32);
            for s in self.row(i) {
                if s.delay == 0 {
                    return Err(SnnError::ZeroDelay { src, dst: s.target });
                }
                if !s.weight.is_finite() {
                    return Err(SnnError::NonFiniteWeight { src, dst: s.target });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_network() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate(1.0));
        let b = net.add_neuron(LifParams::gate(1.0));
        net.connect(a, b, 2.0, 5).unwrap();
        assert_eq!(net.neuron_count(), 2);
        assert_eq!(net.synapse_count(), 1);
        assert_eq!(net.max_delay(), 5);
        assert_eq!(net.synapses_from(a).len(), 1);
        assert_eq!(net.synapses_from(b).len(), 0);
        assert_eq!(net.synapses_from(a)[0].target, b);
    }

    #[test]
    fn zero_delay_rejected() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        assert_eq!(
            net.connect(a, b, 1.0, 0),
            Err(SnnError::ZeroDelay { src: a, dst: b })
        );
    }

    #[test]
    fn unknown_neuron_rejected() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let ghost = NeuronId(99);
        assert_eq!(
            net.connect(a, ghost, 1.0, 1),
            Err(SnnError::UnknownNeuron(ghost))
        );
        assert_eq!(
            net.connect(ghost, a, 1.0, 1),
            Err(SnnError::UnknownNeuron(ghost))
        );
    }

    #[test]
    fn non_finite_weight_rejected() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        assert!(net.connect(a, a, f64::NAN, 1).is_err());
        assert!(net.connect(a, a, f64::INFINITY, 1).is_err());
    }

    #[test]
    fn self_loops_allowed() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::integrator(0.5));
        net.connect(a, a, 1.0, 1).unwrap();
        assert_eq!(net.synapses_from(a)[0].target, a);
    }

    #[test]
    fn io_and_terminal_designation() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.mark_input(a);
        net.mark_input(a); // idempotent
        net.mark_output(b);
        net.set_terminal(b);
        assert_eq!(net.inputs(), &[a]);
        assert_eq!(net.outputs(), &[b]);
        assert_eq!(net.terminal(), Some(b));
    }

    #[test]
    fn in_degrees_counted() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::default(), 3);
        net.connect(ids[0], ids[2], 1.0, 1).unwrap();
        net.connect(ids[1], ids[2], 1.0, 1).unwrap();
        net.connect(ids[2], ids[0], 1.0, 1).unwrap();
        assert_eq!(net.in_degrees(), vec![1, 0, 2]);
    }

    #[test]
    fn validate_flags_spontaneous_for_event_engine() {
        let mut net = Network::new();
        net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        assert!(net.validate(false).is_ok());
        assert!(matches!(
            net.validate(true),
            Err(SnnError::SpontaneousNeuron(_))
        ));
    }

    #[test]
    fn csr_matches_adjacency_and_invalidates_on_mutation() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::default(), 4);
        net.connect(ids[0], ids[1], 1.0, 1).unwrap();
        net.connect(ids[0], ids[2], -2.0, 3).unwrap();
        net.connect(ids[2], ids[3], 0.5, 2).unwrap();

        let csr = net.csr();
        assert_eq!(csr.all().len(), 3);
        for id in [ids[0], ids[1], ids[2], ids[3]] {
            assert_eq!(csr.out(id.index()), net.synapses_from(id), "{id}");
        }

        // Mutating the topology must refresh the snapshot.
        net.connect(ids[3], ids[0], 4.0, 7).unwrap();
        assert_eq!(net.csr().all().len(), 4);
        assert_eq!(net.csr().out(ids[3].index()).len(), 1);

        // Growing the neuron set must extend the offsets.
        let e = net.add_neuron(LifParams::default());
        assert_eq!(net.csr().out(e.index()).len(), 0);
    }

    #[test]
    fn csr_empty_network() {
        let net = Network::new();
        assert!(net.csr().all().is_empty());
    }

    #[test]
    fn validate_catches_in_place_weight_corruption() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.connect(a, b, 1.0, 1).unwrap();
        assert!(net.validate(false).is_ok());
        net.synapses_from_mut(a)[0].weight = f64::NAN;
        assert_eq!(
            net.validate(false),
            Err(SnnError::NonFiniteWeight { src: a, dst: b })
        );
        net.synapses_from_mut(a)[0].weight = 1.0;
        net.synapses_from_mut(a)[0].delay = 0;
        assert_eq!(
            net.validate(false),
            Err(SnnError::ZeroDelay { src: a, dst: b })
        );
    }

    #[test]
    fn max_abs_weight_tracks_inhibitory() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.connect(a, b, -3.5, 1).unwrap();
        net.connect(b, a, 2.0, 1).unwrap();
        assert_eq!(net.max_abs_weight(), 3.5);
    }

    #[test]
    fn freeze_drops_adjacency_and_keeps_reads_identical() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::default(), 4);
        net.connect(ids[0], ids[1], 1.0, 1).unwrap();
        net.connect(ids[0], ids[2], -2.0, 3).unwrap();
        net.connect(ids[2], ids[3], 0.5, 2).unwrap();
        net.mark_input(ids[0]);
        net.set_terminal(ids[3]);

        let before_rows: Vec<Vec<Synapse>> = net
            .neuron_ids()
            .map(|id| net.synapses_from(id).to_vec())
            .collect();
        let before_deg = net.in_degrees();
        let before_mem = net.memory_bytes();

        net.freeze();
        assert!(net.is_frozen());
        assert!(
            net.memory_bytes() < before_mem,
            "freeze must shed the adjacency"
        );

        // Every cheap accessor answers identically off the CSR.
        for (id, row) in net.neuron_ids().zip(&before_rows) {
            assert_eq!(net.synapses_from(id), row.as_slice());
        }
        assert_eq!(net.in_degrees(), before_deg);
        assert_eq!(net.max_abs_weight(), 2.0);
        assert_eq!(net.synapse_count(), 3);
        assert!(net.validate(false).is_ok());
        assert_eq!(net.csr().all().len(), 3);
    }

    #[test]
    fn freeze_reclaims_at_least_the_adjacency_capacity() {
        use std::mem::size_of;
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate(0.5), 64);
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                if i != j && (i + j) % 3 == 0 {
                    net.connect(ids[i], ids[j], 1.0, 1 + (i % 5) as u32)
                        .unwrap();
                }
            }
        }
        // Build the CSR up front so the before/after figures differ only by
        // what freeze is supposed to shed: the build-side adjacency.
        let _ = net.csr();
        let adjacency_bytes = net.synapses.capacity() * size_of::<Vec<Synapse>>()
            + net
                .synapses
                .iter()
                .map(|row| row.capacity() * size_of::<Synapse>())
                .sum::<usize>();
        assert!(adjacency_bytes > 0);
        let before = net.memory_bytes();
        net.freeze();
        let after = net.memory_bytes();
        assert!(
            before - after >= adjacency_bytes,
            "freeze must reclaim at least the adjacency capacity: \
             before {before}, after {after}, adjacency {adjacency_bytes}"
        );
    }

    #[test]
    fn memory_bytes_counts_the_bitplane_snapshot() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate(0.5), 8);
        for w in ids.windows(2) {
            net.connect(w[0], w[1], 1.0, 2).unwrap();
        }
        let _ = net.csr();
        let before = net.memory_bytes();
        let bp_bytes = net.bitplane().memory_bytes();
        assert!(bp_bytes > 0);
        assert_eq!(net.memory_bytes(), before + bp_bytes);
    }

    #[test]
    fn bitplane_snapshot_invalidates_on_mutation_and_thaw() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate(0.5), 4);
        net.connect(ids[0], ids[1], 1.0, 3).unwrap();
        assert_eq!(net.bitplane().horizon(), 3);

        // connect drops the cached snapshot; the rebuild sees the new edge.
        net.connect(ids[1], ids[2], 1.0, 9).unwrap();
        assert!(net.bitplane.get().is_none());
        assert_eq!(net.bitplane().horizon(), 9);

        // freeze keeps it resident (topology unchanged); thaw drops it.
        net.freeze();
        let _ = net.bitplane();
        net.thaw();
        assert!(net.bitplane.get().is_none());

        // add_neuron and synapses_from_mut invalidate too.
        let _ = net.bitplane();
        net.add_neuron(LifParams::gate(0.5));
        assert!(net.bitplane.get().is_none());
        let _ = net.bitplane();
        net.synapses_from_mut(ids[0])[0].weight = -1.0;
        assert!(net.bitplane.get().is_none());
    }

    #[test]
    fn frozen_network_thaws_on_mutation() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::default(), 3);
        net.connect(ids[0], ids[1], 1.0, 1).unwrap();
        net.freeze();

        // connect thaws implicitly and the edge lands after the existing one.
        net.connect(ids[0], ids[2], 2.0, 4).unwrap();
        assert!(!net.is_frozen());
        assert_eq!(net.synapses_from(ids[0]).len(), 2);
        assert_eq!(net.synapses_from(ids[0])[1].target, ids[2]);
        assert_eq!(net.csr().out(0).len(), 2);

        net.freeze();
        net.synapses_from_mut(ids[0])[0].weight = -9.0;
        assert!(!net.is_frozen());
        assert_eq!(net.csr().out(0)[0].weight, -9.0);

        net.freeze();
        let d = net.add_neuron(LifParams::default());
        assert!(!net.is_frozen());
        assert_eq!(net.csr().out(d.index()).len(), 0);

        // freeze is idempotent.
        net.freeze();
        net.freeze();
        assert!(net.is_frozen());
    }
}

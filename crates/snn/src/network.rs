//! The spiking neural network container (Definition 3 of the paper).

use std::sync::OnceLock;

use crate::error::SnnError;
use crate::params::LifParams;
use crate::types::NeuronId;

/// A directed synapse with programmable weight and integer delay (≥ 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Synapse {
    /// Post-synaptic neuron.
    pub target: NeuronId,
    /// Synaptic weight `w_ij ∈ ℝ` (negative = inhibitory).
    pub weight: f64,
    /// Synaptic delay `d_ij ∈ ℕ, d_ij >= 1`, in time steps.
    pub delay: u32,
}

/// Flat compressed-sparse-row view of a network's synapse table.
///
/// `offsets` has `n + 1` entries; the outgoing synapses of neuron `i` are
/// the contiguous slice `synapses[offsets[i]..offsets[i + 1]]`, in the
/// order the edges were `connect`ed. Engines iterate this instead of the
/// build-side `Vec<Vec<Synapse>>` so spike routing walks one flat array
/// (one cache stream) rather than chasing a pointer per neuron.
///
/// Invariants: `offsets` is non-decreasing, `offsets[0] == 0`,
/// `offsets[n] == synapses.len() == Network::synapse_count()`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CsrTopology {
    offsets: Vec<usize>,
    synapses: Vec<Synapse>,
}

impl CsrTopology {
    fn build(adjacency: &[Vec<Synapse>]) -> Self {
        let total = adjacency.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(adjacency.len() + 1);
        let mut synapses = Vec::with_capacity(total);
        offsets.push(0);
        for row in adjacency {
            synapses.extend_from_slice(row);
            offsets.push(synapses.len());
        }
        Self { offsets, synapses }
    }

    /// Outgoing synapses of neuron `i` (dense index).
    #[inline]
    #[must_use]
    pub fn out(&self, i: usize) -> &[Synapse] {
        &self.synapses[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Every synapse in the network as one flat slice.
    #[inline]
    #[must_use]
    pub fn all(&self) -> &[Synapse] {
        &self.synapses
    }
}

/// A spiking neural network: a directed graph (cycles and self-loops
/// allowed) whose vertices are LIF neurons and whose edges are synapses.
///
/// Designated subsets of neurons act as *inputs* (spikes may be induced in
/// them at `t = 0`), *outputs* (their firing state is read out when the
/// computation terminates), and an optional *terminal* neuron whose first
/// spike ends the computation (Definition 3).
///
/// Construction uses a per-neuron adjacency list (cheap appends); the
/// engines read through [`Network::csr`], a flat CSR snapshot built
/// lazily on first use and invalidated by any topology mutation.
#[derive(Clone, Debug, Default)]
pub struct Network {
    params: Vec<LifParams>,
    synapses: Vec<Vec<Synapse>>,
    csr: OnceLock<CsrTopology>,
    inputs: Vec<NeuronId>,
    outputs: Vec<NeuronId>,
    terminal: Option<NeuronId>,
    synapse_count: usize,
    max_delay: u32,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network pre-sized for `neurons` neurons.
    #[must_use]
    pub fn with_capacity(neurons: usize) -> Self {
        Self {
            params: Vec::with_capacity(neurons),
            synapses: Vec::with_capacity(neurons),
            ..Self::default()
        }
    }

    /// Adds a neuron with the given parameters and returns its id.
    pub fn add_neuron(&mut self, params: LifParams) -> NeuronId {
        debug_assert!(params.validate().is_ok(), "invalid LIF parameters");
        let id = NeuronId(u32::try_from(self.params.len()).expect("more than u32::MAX neurons"));
        self.params.push(params);
        self.synapses.push(Vec::new());
        self.csr.take();
        id
    }

    /// Adds `count` neurons sharing the same parameters; returns their ids.
    pub fn add_neurons(&mut self, params: LifParams, count: usize) -> Vec<NeuronId> {
        (0..count).map(|_| self.add_neuron(params)).collect()
    }

    /// Connects `src -> dst` with the given weight and delay.
    ///
    /// # Errors
    /// Rejects unknown endpoints, zero delays and non-finite weights.
    pub fn connect(
        &mut self,
        src: NeuronId,
        dst: NeuronId,
        weight: f64,
        delay: u32,
    ) -> Result<(), SnnError> {
        if src.index() >= self.params.len() {
            return Err(SnnError::UnknownNeuron(src));
        }
        if dst.index() >= self.params.len() {
            return Err(SnnError::UnknownNeuron(dst));
        }
        if delay == 0 {
            return Err(SnnError::ZeroDelay { src, dst });
        }
        if !weight.is_finite() {
            return Err(SnnError::NonFiniteWeight { src, dst });
        }
        self.synapses[src.index()].push(Synapse {
            target: dst,
            weight,
            delay,
        });
        self.csr.take();
        self.synapse_count += 1;
        self.max_delay = self.max_delay.max(delay);
        Ok(())
    }

    /// Flat CSR view of the synapse table, built on first use and cached
    /// until the topology next changes. Engines route spikes through this.
    #[must_use]
    pub fn csr(&self) -> &CsrTopology {
        self.csr.get_or_init(|| CsrTopology::build(&self.synapses))
    }

    /// All neuron parameters as one dense slice (indexable by
    /// [`NeuronId::index`]) — the engines' per-neuron lookup path.
    #[inline]
    #[must_use]
    pub fn params_slice(&self) -> &[LifParams] {
        &self.params
    }

    /// Number of neurons (`n` in the paper's complexity bounds).
    #[must_use]
    pub fn neuron_count(&self) -> usize {
        self.params.len()
    }

    /// Number of synapses.
    #[must_use]
    pub fn synapse_count(&self) -> usize {
        self.synapse_count
    }

    /// Largest synaptic delay in the network (0 for an edgeless network).
    #[must_use]
    pub fn max_delay(&self) -> u32 {
        self.max_delay
    }

    /// Parameters of neuron `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a neuron of this network.
    #[must_use]
    pub fn params(&self, id: NeuronId) -> &LifParams {
        &self.params[id.index()]
    }

    /// Mutable parameters of neuron `id` (reprogramming a deployed net).
    pub fn params_mut(&mut self, id: NeuronId) -> &mut LifParams {
        &mut self.params[id.index()]
    }

    /// Outgoing synapses of neuron `id`.
    #[must_use]
    pub fn synapses_from(&self, id: NeuronId) -> &[Synapse] {
        &self.synapses[id.index()]
    }

    /// Mutable outgoing synapses of neuron `id` — used by the crossbar
    /// embedder to re-program delays in place (§4.4). Invalidates the
    /// cached CSR view.
    pub fn synapses_from_mut(&mut self, id: NeuronId) -> &mut [Synapse] {
        self.csr.take();
        &mut self.synapses[id.index()]
    }

    /// Iterates over all neuron ids.
    pub fn neuron_ids(&self) -> impl Iterator<Item = NeuronId> + '_ {
        (0..self.params.len()).map(|i| NeuronId(i as u32))
    }

    /// Marks `id` as an input neuron (idempotent).
    pub fn mark_input(&mut self, id: NeuronId) {
        if !self.inputs.contains(&id) {
            self.inputs.push(id);
        }
    }

    /// Marks `id` as an output neuron (idempotent).
    pub fn mark_output(&mut self, id: NeuronId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Designates the terminal neuron `u_t` whose first spike ends the
    /// computation (Definition 3).
    pub fn set_terminal(&mut self, id: NeuronId) {
        self.terminal = Some(id);
    }

    /// The designated input neurons `I ⊆ N`.
    #[must_use]
    pub fn inputs(&self) -> &[NeuronId] {
        &self.inputs
    }

    /// The designated output neurons `O ⊆ N`.
    #[must_use]
    pub fn outputs(&self) -> &[NeuronId] {
        &self.outputs
    }

    /// The designated terminal neuron, if any.
    #[must_use]
    pub fn terminal(&self) -> Option<NeuronId> {
        self.terminal
    }

    /// In-degrees of every neuron (useful for circuit-size accounting:
    /// the paper's node circuits scale with `indeg(v)`).
    #[must_use]
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.params.len()];
        for row in &self.synapses {
            for s in row {
                deg[s.target.index()] += 1;
            }
        }
        deg
    }

    /// Largest absolute synaptic weight (circuit analyses in §5 distinguish
    /// polynomially- from exponentially-bounded weights).
    #[must_use]
    pub fn max_abs_weight(&self) -> f64 {
        self.synapses
            .iter()
            .flatten()
            .map(|s| s.weight.abs())
            .fold(0.0, f64::max)
    }

    /// Checks every neuron and synapse for model validity; additionally
    /// verifies the event-engine precondition when `for_event_engine`.
    ///
    /// `connect` already rejects zero delays and non-finite weights, but
    /// [`Self::synapses_from_mut`] permits in-place re-programming that
    /// bypasses those checks, so the engines re-validate here before a run
    /// rather than silently mis-scheduling corrupted synapses.
    pub fn validate(&self, for_event_engine: bool) -> Result<(), SnnError> {
        for (i, p) in self.params.iter().enumerate() {
            p.validate()?;
            if for_event_engine && !p.is_input_driven() {
                return Err(SnnError::SpontaneousNeuron(NeuronId(i as u32)));
            }
        }
        for (i, row) in self.synapses.iter().enumerate() {
            let src = NeuronId(i as u32);
            for s in row {
                if s.delay == 0 {
                    return Err(SnnError::ZeroDelay { src, dst: s.target });
                }
                if !s.weight.is_finite() {
                    return Err(SnnError::NonFiniteWeight { src, dst: s.target });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_network() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate(1.0));
        let b = net.add_neuron(LifParams::gate(1.0));
        net.connect(a, b, 2.0, 5).unwrap();
        assert_eq!(net.neuron_count(), 2);
        assert_eq!(net.synapse_count(), 1);
        assert_eq!(net.max_delay(), 5);
        assert_eq!(net.synapses_from(a).len(), 1);
        assert_eq!(net.synapses_from(b).len(), 0);
        assert_eq!(net.synapses_from(a)[0].target, b);
    }

    #[test]
    fn zero_delay_rejected() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        assert_eq!(
            net.connect(a, b, 1.0, 0),
            Err(SnnError::ZeroDelay { src: a, dst: b })
        );
    }

    #[test]
    fn unknown_neuron_rejected() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let ghost = NeuronId(99);
        assert_eq!(
            net.connect(a, ghost, 1.0, 1),
            Err(SnnError::UnknownNeuron(ghost))
        );
        assert_eq!(
            net.connect(ghost, a, 1.0, 1),
            Err(SnnError::UnknownNeuron(ghost))
        );
    }

    #[test]
    fn non_finite_weight_rejected() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        assert!(net.connect(a, a, f64::NAN, 1).is_err());
        assert!(net.connect(a, a, f64::INFINITY, 1).is_err());
    }

    #[test]
    fn self_loops_allowed() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::integrator(0.5));
        net.connect(a, a, 1.0, 1).unwrap();
        assert_eq!(net.synapses_from(a)[0].target, a);
    }

    #[test]
    fn io_and_terminal_designation() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.mark_input(a);
        net.mark_input(a); // idempotent
        net.mark_output(b);
        net.set_terminal(b);
        assert_eq!(net.inputs(), &[a]);
        assert_eq!(net.outputs(), &[b]);
        assert_eq!(net.terminal(), Some(b));
    }

    #[test]
    fn in_degrees_counted() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::default(), 3);
        net.connect(ids[0], ids[2], 1.0, 1).unwrap();
        net.connect(ids[1], ids[2], 1.0, 1).unwrap();
        net.connect(ids[2], ids[0], 1.0, 1).unwrap();
        assert_eq!(net.in_degrees(), vec![1, 0, 2]);
    }

    #[test]
    fn validate_flags_spontaneous_for_event_engine() {
        let mut net = Network::new();
        net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        assert!(net.validate(false).is_ok());
        assert!(matches!(
            net.validate(true),
            Err(SnnError::SpontaneousNeuron(_))
        ));
    }

    #[test]
    fn csr_matches_adjacency_and_invalidates_on_mutation() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::default(), 4);
        net.connect(ids[0], ids[1], 1.0, 1).unwrap();
        net.connect(ids[0], ids[2], -2.0, 3).unwrap();
        net.connect(ids[2], ids[3], 0.5, 2).unwrap();

        let csr = net.csr();
        assert_eq!(csr.all().len(), 3);
        for id in [ids[0], ids[1], ids[2], ids[3]] {
            assert_eq!(csr.out(id.index()), net.synapses_from(id), "{id}");
        }

        // Mutating the topology must refresh the snapshot.
        net.connect(ids[3], ids[0], 4.0, 7).unwrap();
        assert_eq!(net.csr().all().len(), 4);
        assert_eq!(net.csr().out(ids[3].index()).len(), 1);

        // Growing the neuron set must extend the offsets.
        let e = net.add_neuron(LifParams::default());
        assert_eq!(net.csr().out(e.index()).len(), 0);
    }

    #[test]
    fn csr_empty_network() {
        let net = Network::new();
        assert!(net.csr().all().is_empty());
    }

    #[test]
    fn validate_catches_in_place_weight_corruption() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.connect(a, b, 1.0, 1).unwrap();
        assert!(net.validate(false).is_ok());
        net.synapses_from_mut(a)[0].weight = f64::NAN;
        assert_eq!(
            net.validate(false),
            Err(SnnError::NonFiniteWeight { src: a, dst: b })
        );
        net.synapses_from_mut(a)[0].weight = 1.0;
        net.synapses_from_mut(a)[0].delay = 0;
        assert_eq!(
            net.validate(false),
            Err(SnnError::ZeroDelay { src: a, dst: b })
        );
    }

    #[test]
    fn max_abs_weight_tracks_inhibitory() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.connect(a, b, -3.5, 1).unwrap();
        net.connect(b, a, 2.0, 1).unwrap();
        assert_eq!(net.max_abs_weight(), 3.5);
    }
}

//! Per-neuron programmable parameters (Definition 1 of the paper).

/// Programmable parameters of a single LIF neuron: the 3-tuple
/// `(v_reset, v_threshold, tau)` of Definition 3.
///
/// * `v_reset` — voltage the neuron starts at and returns to after firing.
/// * `v_threshold` — the neuron fires when its updated voltage strictly
///   exceeds this value (`v̂ > v_threshold`, Eq. (2)).
/// * `decay` — `tau ∈ [0, 1]`; each step the voltage loses a `tau` fraction
///   of its distance above `v_reset`. `tau = 1` yields a memoryless
///   threshold gate (the deep-learning case noted in §2.1); `tau = 0`
///   yields a perfect integrator, used by the paper for memory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifParams {
    /// Reset (and initial) voltage `v_reset`.
    pub v_reset: f64,
    /// Firing threshold `v_threshold`.
    pub v_threshold: f64,
    /// Decay rate `tau ∈ [0, 1]`.
    pub decay: f64,
}

impl LifParams {
    /// A memoryless threshold gate: `tau = 1`, reset 0. The neuron fires iff
    /// the synaptic input arriving in a single step strictly exceeds
    /// `threshold`. This is the neuron type used throughout §5's circuits
    /// ("all initial potentials are 0 ... there is no decay" there means the
    /// gate variant that resets after every step whether it fires or not;
    /// with `tau = 1` any accumulated sub-threshold voltage drains before
    /// the next step, which is the behaviour those feed-forward circuits
    /// require).
    #[must_use]
    pub fn gate(threshold: f64) -> Self {
        Self {
            v_reset: 0.0,
            v_threshold: threshold,
            decay: 1.0,
        }
    }

    /// A gate that fires when at least `k` unit-weight inputs arrive in the
    /// same step (threshold `k - 1/2`, robust to floating-point sums).
    #[must_use]
    pub fn gate_at_least(k: u32) -> Self {
        Self::gate(f64::from(k) - 0.5)
    }

    /// A perfect integrator: `tau = 0`, reset 0. Voltage accumulates across
    /// steps until the threshold is crossed. Used for neuromorphic memory
    /// (§2.2, Figure 1B) and for the delay-encoded SSSP neurons (§3) which
    /// have "initial voltage 0, unit threshold voltage, and zero decay".
    #[must_use]
    pub fn integrator(threshold: f64) -> Self {
        Self {
            v_reset: 0.0,
            v_threshold: threshold,
            decay: 0.0,
        }
    }

    /// The standard §3/§4 graph-node neuron: integrator with unit threshold
    /// (fires on the first arriving unit-weight spike).
    #[must_use]
    pub fn unit_integrator() -> Self {
        // Threshold 0.5 < 1.0 makes a single unit-weight spike sufficient
        // while staying faithful to "unit threshold" semantics (v̂ > θ with
        // θ = 1 would require weight strictly greater than 1; the paper's
        // circuits use ≥ semantics for unit weights, which we realise by
        // placing thresholds at half-integers).
        Self::integrator(0.5)
    }

    /// True when this neuron can never fire spontaneously (without synaptic
    /// input): requires `v_reset <= v_threshold`. The event-driven engine
    /// relies on this property.
    #[must_use]
    pub fn is_input_driven(&self) -> bool {
        self.v_reset <= self.v_threshold
    }

    /// Validates the parameter ranges of Definition 1.
    pub fn validate(&self) -> Result<(), crate::SnnError> {
        if !(0.0..=1.0).contains(&self.decay) || !self.decay.is_finite() {
            return Err(crate::SnnError::InvalidDecay(self.decay));
        }
        if !self.v_reset.is_finite() || !self.v_threshold.is_finite() {
            return Err(crate::SnnError::NonFiniteVoltage);
        }
        Ok(())
    }
}

impl Default for LifParams {
    /// Defaults to the paper's §5 convention: threshold 1, potential 0, no
    /// memory between steps — realised as a gate that fires when input
    /// strictly exceeds `1 - 1/2` (i.e. at least one unit-weight spike).
    fn default() -> Self {
        Self::gate_at_least(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_is_memoryless() {
        let p = LifParams::gate(1.0);
        assert_eq!(p.decay, 1.0);
        assert_eq!(p.v_reset, 0.0);
        assert!(p.is_input_driven());
    }

    #[test]
    fn gate_at_least_thresholds() {
        assert_eq!(LifParams::gate_at_least(1).v_threshold, 0.5);
        assert_eq!(LifParams::gate_at_least(3).v_threshold, 2.5);
    }

    #[test]
    fn integrator_holds_state() {
        let p = LifParams::integrator(2.0);
        assert_eq!(p.decay, 0.0);
        assert!(p.is_input_driven());
    }

    #[test]
    fn validate_rejects_bad_decay() {
        let mut p = LifParams {
            decay: 1.5,
            ..LifParams::default()
        };
        assert!(p.validate().is_err());
        p.decay = -0.1;
        assert!(p.validate().is_err());
        p.decay = f64::NAN;
        assert!(p.validate().is_err());
        p.decay = 0.3;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_finite_voltages() {
        let p = LifParams {
            v_threshold: f64::INFINITY,
            ..LifParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn spontaneous_firing_detected() {
        let p = LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        };
        assert!(!p.is_input_driven());
    }
}

//! Error type for network construction and simulation.

use crate::types::NeuronId;
use std::fmt;

/// Errors raised while building or simulating a spiking neural network.
#[derive(Clone, Debug, PartialEq)]
pub enum SnnError {
    /// A synapse referenced a neuron id that does not exist in the network.
    UnknownNeuron(NeuronId),
    /// Synaptic delays must be at least 1 (the paper prohibits zero delays:
    /// "inherent latency when a spike traverses a synapse is a reasonable
    /// physical assumption", §2.2).
    ZeroDelay {
        /// Source neuron of the offending synapse.
        src: NeuronId,
        /// Target neuron of the offending synapse.
        dst: NeuronId,
    },
    /// A synaptic weight was NaN or infinite.
    NonFiniteWeight {
        /// Source neuron of the offending synapse.
        src: NeuronId,
        /// Target neuron of the offending synapse.
        dst: NeuronId,
    },
    /// A neuron decay parameter was outside `[0, 1]`.
    InvalidDecay(f64),
    /// A neuron reset or threshold voltage was NaN or infinite.
    NonFiniteVoltage,
    /// The event-driven engine requires every neuron to satisfy
    /// `v_reset <= v_threshold` (no spontaneous firing); this neuron
    /// violates that.
    SpontaneousNeuron(NeuronId),
    /// The run configuration asked to stop at the terminal neuron but the
    /// network has no terminal neuron designated.
    NoTerminal,
    /// The simulation hit `max_steps` while a stop condition other than
    /// `MaxSteps` was requested and strict mode was enabled.
    StepLimitExceeded {
        /// The configured step budget that was exhausted.
        max_steps: u64,
    },
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNeuron(id) => write!(f, "unknown neuron {id}"),
            Self::ZeroDelay { src, dst } => {
                write!(f, "synapse {src} -> {dst} has delay 0 (minimum is 1)")
            }
            Self::NonFiniteWeight { src, dst } => {
                write!(f, "synapse {src} -> {dst} has a non-finite weight")
            }
            Self::InvalidDecay(d) => write!(f, "decay {d} outside [0, 1]"),
            Self::NonFiniteVoltage => write!(f, "non-finite reset or threshold voltage"),
            Self::SpontaneousNeuron(id) => write!(
                f,
                "neuron {id} has v_reset > v_threshold (spontaneous firing); \
                 unsupported by the event-driven engine"
            ),
            Self::NoTerminal => write!(f, "stop condition requires a terminal neuron, none set"),
            Self::StepLimitExceeded { max_steps } => {
                write!(f, "stop condition unmet after {max_steps} steps")
            }
        }
    }
}

impl std::error::Error for SnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_helpfully() {
        let e = SnnError::ZeroDelay {
            src: NeuronId(0),
            dst: NeuronId(1),
        };
        assert!(e.to_string().contains("delay 0"));
        assert!(SnnError::NoTerminal.to_string().contains("terminal"));
        assert!(SnnError::StepLimitExceeded { max_steps: 10 }
            .to_string()
            .contains("10"));
    }
}

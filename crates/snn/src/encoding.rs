//! Binary spike encodings of integers.
//!
//! The paper's polynomial-time algorithms exchange λ-bit messages encoding
//! nonnegative integers as parallel spike patterns: bit `j` of a value is
//! carried by the `j`-th neuron of a λ-neuron bundle firing (§2.2, §4).
//! Helpers here convert between `u64` values, bit vectors, and the spike
//! state of neuron bundles. Bit 0 is least significant throughout.

use crate::engine::RunResult;
use crate::types::{NeuronId, Time};

/// Decomposes `value` into `lambda` bits, least-significant first.
///
/// # Panics
/// Panics if `value` does not fit in `lambda` bits.
#[must_use]
pub fn value_to_bits(value: u64, lambda: usize) -> Vec<bool> {
    assert!(
        lambda >= 64 || value < (1u64 << lambda),
        "value {value} does not fit in {lambda} bits"
    );
    (0..lambda).map(|j| (value >> j) & 1 == 1).collect()
}

/// Recomposes a value from bits (least-significant first).
#[must_use]
pub fn bits_to_value(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "more than 64 bits");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (j, &b)| acc | (u64::from(b) << j))
}

/// Number of bits needed to represent `value` (at least 1).
#[must_use]
pub fn bits_needed(value: u64) -> usize {
    (64 - value.leading_zeros()).max(1) as usize
}

/// The input neurons of `bundle` that should be induced to spike at `t = 0`
/// to present `value` to a circuit (bit 0 of `value` ↔ `bundle[0]`).
#[must_use]
pub fn spikes_for_value(bundle: &[NeuronId], value: u64) -> Vec<NeuronId> {
    assert!(
        bundle.len() >= 64 || value < (1u64 << bundle.len()),
        "value {value} does not fit in a {}-neuron bundle",
        bundle.len()
    );
    bundle
        .iter()
        .enumerate()
        .filter(|&(j, _)| (value >> j) & 1 == 1)
        .map(|(_, &id)| id)
        .collect()
}

/// Reads the value a neuron bundle holds at time `t`: bit `j` is set iff
/// `bundle[j]` fired at exactly `t` (requires the run to have recorded a
/// raster; see [`read_value`] for the end-of-run variant that does not).
#[must_use]
pub fn read_value_at(result: &RunResult, bundle: &[NeuronId], t: Time) -> u64 {
    let raster = result
        .raster
        .as_ref()
        .expect("read_value_at requires raster recording");
    bits_to_value(
        &bundle
            .iter()
            .map(|&id| raster.fired_at(id, t))
            .collect::<Vec<_>>(),
    )
}

/// Reads the value a neuron bundle holds at the end of the run (bit `j` set
/// iff `bundle[j]` fired at the final step `T`) — the Definition 3 readout.
#[must_use]
pub fn read_value(result: &RunResult, bundle: &[NeuronId]) -> u64 {
    bits_to_value(
        &bundle
            .iter()
            .map(|&id| result.fired_at_end(id))
            .collect::<Vec<_>>(),
    )
}

/// Sentinel spike time for "this neuron never spiked" in packed form.
///
/// First-spike readouts are `Option<Time>` in memory (`None` =
/// unreachable, §3.2); a flat `u64` stream is easier to ship across FFI,
/// sockets, and bench artifacts, so packing maps `None` to this value.
/// Real spike times can never reach it: engines cap runs at a step
/// budget far below `u64::MAX`.
pub const NEVER_SPIKED: Time = Time::MAX;

/// Packs first-spike times into a flat `u64` stream, mapping `None`
/// (never spiked = unreachable) to [`NEVER_SPIKED`].
///
/// # Panics
/// Panics if an actual spike time equals the sentinel — that would make
/// the packing ambiguous.
#[must_use]
pub fn pack_spike_times(times: &[Option<Time>]) -> Vec<u64> {
    times
        .iter()
        .map(|t| match *t {
            Some(t) => {
                assert_ne!(t, NEVER_SPIKED, "spike time collides with sentinel");
                t
            }
            None => NEVER_SPIKED,
        })
        .collect()
}

/// Inverse of [`pack_spike_times`]: [`NEVER_SPIKED`] becomes `None`.
#[must_use]
pub fn unpack_spike_times(packed: &[u64]) -> Vec<Option<Time>> {
    packed
        .iter()
        .map(|&t| (t != NEVER_SPIKED).then_some(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for v in [0u64, 1, 2, 3, 5, 127, 128, 255, 1 << 20] {
            let lambda = bits_needed(v).max(21);
            assert_eq!(bits_to_value(&value_to_bits(v, lambda)), v);
        }
    }

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(4), 3);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn value_too_large_panics() {
        let _ = value_to_bits(8, 3);
    }

    #[test]
    fn spikes_for_value_selects_set_bits() {
        let bundle: Vec<NeuronId> = (0..4).map(NeuronId).collect();
        assert_eq!(
            spikes_for_value(&bundle, 0b1010),
            vec![NeuronId(1), NeuronId(3)]
        );
        assert!(spikes_for_value(&bundle, 0).is_empty());
    }

    #[test]
    fn full_width_64_bit_values() {
        let v = u64::MAX;
        let bits = value_to_bits(v, 64);
        assert!(bits.iter().all(|&b| b));
        assert_eq!(bits_to_value(&bits), v);
    }

    #[test]
    fn spike_time_packing_roundtrips_with_sentinel() {
        let times = vec![Some(0), None, Some(17), None, Some(Time::MAX - 1)];
        let packed = pack_spike_times(&times);
        assert_eq!(packed[1], NEVER_SPIKED);
        assert_eq!(unpack_spike_times(&packed), times);
    }

    #[test]
    #[should_panic(expected = "collides with sentinel")]
    fn packing_a_sentinel_valued_spike_time_panics() {
        let _ = pack_spike_times(&[Some(NEVER_SPIKED)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One first-spike readout entry: unreachable, or a plausible time
    /// (incl. 0 and values near the sentinel boundary).
    fn arb_spike_time() -> impl Strategy<Value = Option<Time>> {
        (0u8..4, 0u64..1000).prop_map(|(kind, t)| match kind {
            0 => None,
            1 => Some(t),
            2 => Some(Time::MAX - 1 - t), // near the sentinel, still valid
            _ => Some(0),
        })
    }

    proptest! {
        /// Value ↔ bit-vector round trip across widths.
        #[test]
        fn value_bits_roundtrip(value in 0u64..u64::MAX, extra in 0usize..8) {
            let lambda = (bits_needed(value) + extra).min(64);
            prop_assert_eq!(bits_to_value(&value_to_bits(value, lambda)), value);
        }

        /// Bundle presentation agrees with the bit decomposition: neuron j
        /// is stimulated iff bit j is set.
        #[test]
        fn spikes_match_bits(value in 0u64..(1u64 << 16), lambda in 16usize..24) {
            let bundle: Vec<NeuronId> = (0..lambda as u32).map(NeuronId).collect();
            let spikes = spikes_for_value(&bundle, value);
            let bits = value_to_bits(value, lambda);
            for (j, &bit) in bits.iter().enumerate() {
                prop_assert_eq!(spikes.contains(&bundle[j]), bit);
            }
        }

        /// First-spike packing round-trips, never-spiked sentinel included.
        #[test]
        fn spike_times_roundtrip(
            times in proptest::collection::vec(arb_spike_time(), 0..64)
        ) {
            let packed = pack_spike_times(&times);
            prop_assert_eq!(packed.len(), times.len());
            for (p, t) in packed.iter().zip(&times) {
                prop_assert_eq!(*p == NEVER_SPIKED, t.is_none());
            }
            prop_assert_eq!(unpack_spike_times(&packed), times);
        }
    }
}

//! Spike-train analytics and network export.
//!
//! Post-run analysis of rasters — firing rates, inter-spike intervals,
//! activity histograms, ASCII raster rendering — plus Graphviz DOT export
//! of networks for inspection. These are the release-library conveniences
//! a simulator needs around the paper's core machinery.

use crate::network::Network;
use crate::raster::SpikeRaster;
use crate::types::{NeuronId, Time};

/// Firing statistics of one neuron over a run of `horizon` steps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FiringStats {
    /// Spike count.
    pub spikes: usize,
    /// Spikes per step.
    pub rate: f64,
    /// Mean inter-spike interval (`None` with fewer than two spikes).
    pub mean_isi: Option<f64>,
}

/// Per-neuron firing statistics from a raster.
#[must_use]
pub fn firing_stats(raster: &SpikeRaster, neuron: NeuronId, horizon: Time) -> FiringStats {
    let times = raster.spikes_of(neuron);
    let spikes = times.len();
    let mean_isi = (spikes >= 2).then(|| {
        let total: u64 = times.windows(2).map(|w| w[1] - w[0]).sum();
        total as f64 / (spikes - 1) as f64
    });
    FiringStats {
        spikes,
        rate: spikes as f64 / horizon.max(1) as f64,
        mean_isi,
    }
}

/// Number of spikes per time step over `0..=horizon` — the network
/// activity profile (the wavefront of the §3 algorithm shows up as a
/// travelling bump).
#[must_use]
pub fn activity_histogram(raster: &SpikeRaster, horizon: Time) -> Vec<usize> {
    let mut hist = vec![0usize; horizon as usize + 1];
    for &(t, _) in raster.events() {
        if t <= horizon {
            hist[t as usize] += 1;
        }
    }
    hist
}

/// Renders a raster as ASCII art: one row per listed neuron, one column
/// per time step, `|` at spikes. Suitable for terminal inspection of
/// small runs (columns are capped at `max_cols`).
#[must_use]
pub fn render_raster(raster: &SpikeRaster, neurons: &[NeuronId], max_cols: usize) -> String {
    let horizon = raster
        .events()
        .last()
        .map_or(0, |&(t, _)| t as usize)
        .min(max_cols.saturating_sub(1));
    let mut out = String::new();
    for &nid in neurons {
        let times = raster.spikes_of(nid);
        let mut row = vec![b'.'; horizon + 1];
        for &t in &times {
            if (t as usize) <= horizon {
                row[t as usize] = b'|';
            }
        }
        out.push_str(&format!("{nid:>6} "));
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// Exports the network as Graphviz DOT: neurons labelled with their
/// parameters, synapses with `weight@delay`. Inhibitory synapses are
/// dashed; inputs are boxes; the terminal is a double circle.
#[must_use]
pub fn to_dot(net: &Network) -> String {
    let mut out = String::from("digraph snn {\n  rankdir=LR;\n");
    for id in net.neuron_ids() {
        let p = net.params(id);
        let shape = if net.inputs().contains(&id) {
            "box"
        } else if net.terminal() == Some(id) {
            "doublecircle"
        } else {
            "circle"
        };
        out.push_str(&format!(
            "  n{} [shape={shape}, label=\"{}\\nθ={} τ={}\"];\n",
            id.0, id.0, p.v_threshold, p.decay
        ));
    }
    for id in net.neuron_ids() {
        for s in net.synapses_from(id) {
            let style = if s.weight < 0.0 { ", style=dashed" } else { "" };
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{}@{}\"{style}];\n",
                id.0, s.target.0, s.weight, s.delay
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EventEngine, RunConfig};
    use crate::params::LifParams;

    fn latch_raster() -> (SpikeRaster, NeuronId) {
        let mut net = Network::new();
        let m = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(m, m, 1.0, 2).unwrap();
        let r = EventEngine
            .run(&net, &[m], &RunConfig::fixed(10).with_raster())
            .unwrap();
        (r.raster.unwrap(), m)
    }

    #[test]
    fn firing_stats_of_periodic_neuron() {
        let (raster, m) = latch_raster();
        let s = firing_stats(&raster, m, 10);
        assert_eq!(s.spikes, 6); // t = 0, 2, 4, 6, 8, 10
        assert_eq!(s.mean_isi, Some(2.0));
        assert!((s.rate - 0.6).abs() < 1e-12);
    }

    #[test]
    fn stats_of_silent_neuron() {
        let (raster, _) = latch_raster();
        let s = firing_stats(&raster, NeuronId(99), 10);
        assert_eq!(s.spikes, 0);
        assert_eq!(s.mean_isi, None);
    }

    #[test]
    fn activity_histogram_counts_per_step() {
        let (raster, _) = latch_raster();
        let h = activity_histogram(&raster, 10);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 0);
        assert_eq!(h[2], 1);
    }

    #[test]
    fn raster_rendering() {
        let (raster, m) = latch_raster();
        let art = render_raster(&raster, &[m], 80);
        assert!(art.contains("|.|.|"));
    }

    #[test]
    fn dot_export_structure() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, -1.5, 4).unwrap();
        net.mark_input(a);
        net.set_terminal(b);
        let dot = to_dot(&net);
        assert!(dot.contains("digraph snn"));
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("n1 [shape=doublecircle"));
        assert!(dot.contains("n0 -> n1 [label=\"-1.5@4\", style=dashed]"));
    }
}

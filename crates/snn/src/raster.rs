//! Spike raster: the full record of (time, neuron) firing events.

use crate::types::{NeuronId, Time};

/// A chronological record of every spike in a run.
///
/// Spikes are stored in nondecreasing time order (engines emit them that
/// way); within a time step they are sorted by neuron id, making rasters
/// deterministic and comparable across engines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpikeRaster {
    events: Vec<(Time, NeuronId)>,
}

impl SpikeRaster {
    /// Creates an empty raster.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends all spikes of one time step. `neurons` must be sorted.
    pub fn push_step(&mut self, t: Time, neurons: &[NeuronId]) {
        debug_assert!(neurons.windows(2).all(|w| w[0] < w[1]), "unsorted step");
        debug_assert!(
            self.events.last().is_none_or(|&(last, _)| last <= t),
            "time went backwards"
        );
        self.events.extend(neurons.iter().map(|&n| (t, n)));
    }

    /// All events in chronological order.
    #[must_use]
    pub fn events(&self) -> &[(Time, NeuronId)] {
        &self.events
    }

    /// Total number of spike events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no spikes were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Firing times of a single neuron, in increasing order.
    #[must_use]
    pub fn spikes_of(&self, id: NeuronId) -> Vec<Time> {
        self.events
            .iter()
            .filter(|&&(_, n)| n == id)
            .map(|&(t, _)| t)
            .collect()
    }

    /// Neurons that fired at exactly time `t`, in increasing id order.
    #[must_use]
    pub fn spikes_at(&self, t: Time) -> Vec<NeuronId> {
        // Events are time-sorted; binary-search the window.
        let start = self.events.partition_point(|&(et, _)| et < t);
        let end = self.events.partition_point(|&(et, _)| et <= t);
        self.events[start..end].iter().map(|&(_, n)| n).collect()
    }

    /// Whether neuron `id` fired at time `t`.
    #[must_use]
    pub fn fired_at(&self, id: NeuronId, t: Time) -> bool {
        self.spikes_at(t).binary_search(&id).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NeuronId {
        NeuronId(i)
    }

    #[test]
    fn push_and_query() {
        let mut r = SpikeRaster::new();
        r.push_step(1, &[n(0), n(2)]);
        r.push_step(3, &[n(1)]);
        r.push_step(3, &[n(2)]); // second batch same step is fine if sorted overall by time
        assert_eq!(r.len(), 4);
        assert_eq!(r.spikes_of(n(2)), vec![1, 3]);
        assert_eq!(r.spikes_at(3), vec![n(1), n(2)]);
        assert!(r.fired_at(n(0), 1));
        assert!(!r.fired_at(n(0), 3));
        assert!(r.spikes_at(2).is_empty());
    }

    #[test]
    fn empty_raster() {
        let r = SpikeRaster::new();
        assert!(r.is_empty());
        assert!(r.spikes_of(n(0)).is_empty());
        assert!(r.spikes_at(0).is_empty());
    }
}

//! Thread-parallel time-stepped engine.
//!
//! Each LIF update (Eqs. (1)–(3)) touches only that neuron's state, so a
//! synchronous step is embarrassingly parallel across neurons: the neuron
//! range splits into per-worker chunks, every worker advances its chunk,
//! and spike routing is merged after the step barrier — the same
//! compute/communicate cadence a multi-core neuromorphic chip follows
//! every tick. Results are bit-identical to [`super::DenseEngine`]
//! (verified by property tests): parallelism only reorders independent
//! per-neuron work.
//!
//! Workers are spawned once per run and kept alive across steps,
//! synchronised by a pair of barriers per step. The previous
//! implementation spawned `threads` fresh OS threads *every step*, which
//! cost tens of microseconds per step — orders of magnitude more than the
//! step's arithmetic for small networks.
//!
//! Two guards keep the fixed overhead bounded for small networks:
//!
//! * [`ParallelDenseEngine::min_chunk`] caps the worker count so no worker
//!   owns fewer neurons than a barrier round-trip is worth; when only one
//!   worker remains, the run delegates to [`super::DenseEngine`] outright.
//! * The per-step barriers are spin/yield/park tiered ([`SpinBarrier`])
//!   instead of [`std::sync::Barrier`]: a dense step over a small chunk
//!   takes well under a microsecond, so parking the thread in the kernel
//!   (and paying the wakeup) per barrier dominated total runtime at small
//!   `n` — the committed baseline had `parallel_dense/64` ~40× over
//!   `dense/64`. The park tier remains as the backstop so oversubscribed
//!   machines (fewer cores than parties) don't burn whole scheduler
//!   quanta spinning for a peer that cannot be running.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sgl_observe::{NullObserver, RunObserver, StepRecord};

use super::batch::RunScratch;
use super::dense::route_spikes;
use super::sync::SpinBarrier;
use super::{
    check_initial, DenseEngine, Engine, Recorder, RunConfig, RunResult, StopCondition, StopReason,
};
use crate::error::SnnError;
use crate::params::LifParams;
use crate::types::NeuronId;
use crate::Network;

/// Default [`ParallelDenseEngine::min_chunk`]: below ~64 neurons per
/// worker, a step's arithmetic is cheaper than its two barrier crossings,
/// so splitting finer only adds synchronisation overhead.
pub const DEFAULT_MIN_CHUNK: usize = 64;

/// Dense engine with per-step neuron-range parallelism over `threads`
/// worker threads (1 = sequential, identical to [`super::DenseEngine`]).
#[derive(Clone, Copy, Debug)]
pub struct ParallelDenseEngine {
    /// Worker threads per step.
    pub threads: usize,
    /// Minimum neurons per worker: the engine never splits the neuron
    /// range into chunks smaller than this, shedding workers (down to the
    /// plain dense engine at one) rather than paying barrier crossings
    /// that cost more than the chunk's arithmetic. Set to 1 to force the
    /// full requested thread count regardless of network size.
    pub min_chunk: usize,
}

impl Default for ParallelDenseEngine {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
        )
    }
}

impl ParallelDenseEngine {
    /// Engine over `threads` workers with the default occupancy guard
    /// ([`DEFAULT_MIN_CHUNK`] neurons per worker minimum).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            min_chunk: DEFAULT_MIN_CHUNK,
        }
    }
}

/// Per-worker mailboxes. The main thread writes `inbox` and reads
/// `fired`/`armed` only while the worker is parked at a barrier, so the
/// mutexes are never contended — they exist to satisfy `Sync`.
struct WorkerCell {
    /// Deliveries for this worker's chunk, in global-batch order
    /// (preserves the accumulation order the dense engine uses).
    inbox: Mutex<Vec<(usize, f64)>>,
    /// (sorted fired ids, armed flag) produced by the last step.
    out: Mutex<(Vec<NeuronId>, bool)>,
}

impl Engine for ParallelDenseEngine {
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        self.run_observed(net, initial_spikes, config, &mut NullObserver)
    }
}

impl ParallelDenseEngine {
    /// [`Engine::run`] with telemetry hooks; see
    /// [`DenseEngine::run_observed`](super::DenseEngine::run_observed).
    /// Additionally reports the coordinator's per-step barrier-block time
    /// via [`RunObserver::on_barrier_wait`] (only when `O::ENABLED`).
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        let mut scratch = RunScratch::new();
        self.run_with_scratch_observed(net, initial_spikes, config, &mut scratch, obs)
    }

    /// [`Engine::run`] over recycled coordinator buffers; see
    /// [`DenseEngine::run_with_scratch`](super::DenseEngine::run_with_scratch).
    /// The per-worker chunk state still lives with the workers (spawned
    /// per run); the scratch recycles the scheduler and spike buffers.
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_scratch(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
    ) -> Result<RunResult, SnnError> {
        self.run_with_scratch_observed(net, initial_spikes, config, scratch, &mut NullObserver)
    }

    /// [`Self::run_with_scratch`] with telemetry hooks.
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_scratch_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        net.validate(false)?;
        let result = self.run_core(net, initial_spikes, config, scratch, obs)?;
        obs.on_finish(
            result.steps,
            result.stats.spike_events,
            result.stats.synaptic_deliveries,
            result.stats.neuron_updates,
        );
        Ok(result)
    }

    /// Neurons each worker owns for a network of `n` neurons: an even
    /// split across `threads`, floored at `min_chunk` so tiny networks
    /// shed workers instead of paying barrier overhead.
    fn chunk_size(&self, n: usize) -> usize {
        n.div_ceil(self.threads.max(1)).max(self.min_chunk.max(1))
    }

    /// The hot path, minus network validation (the batch runner validates
    /// the shared network once per batch rather than once per run).
    pub(super) fn run_core<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        let n = net.neuron_count();
        let chunk = self.chunk_size(n);
        if n.div_ceil(chunk.max(1)) <= 1 {
            // One worker would own the whole range: that is the dense
            // engine with extra synchronisation. Delegate (hook cadence is
            // identical; results are bit-identical by the engine contract).
            return DenseEngine.run_core(net, initial_spikes, config, scratch, obs);
        }
        check_initial(net, initial_spikes)?;
        let mut rec = Recorder::new(net, config)?;
        let csr = net.csr();
        let params = net.params_slice();

        scratch.reset(net);
        let RunScratch {
            wheel,
            batch,
            fired,
            ..
        } = scratch;

        fired.extend_from_slice(initial_spikes);
        fired.sort_unstable();
        fired.dedup();

        let mut stop_hit = rec.record_step(0, fired, &config.stop);
        let deliveries = route_spikes(csr, fired, 0, wheel, &mut rec);
        obs.on_step(
            0,
            StepRecord {
                spikes: fired.len() as u64,
                deliveries,
                updates: 0,
            },
        );
        if O::ENABLED {
            obs.on_scheduler(0, wheel.observe());
        }
        if stop_hit
            && !matches!(
                config.stop,
                StopCondition::MaxSteps | StopCondition::Quiescent
            )
        {
            return rec.finish(0, StopReason::ConditionMet, config);
        }
        let spontaneous = params.iter().any(|p| !p.is_input_driven());
        if wheel.is_empty() && !spontaneous {
            return rec.finish(0, StopReason::Quiescent, config);
        }

        // Partition by chunk size, then count the chunks that actually
        // exist: `chunk`-sized pieces can cover `n` neurons in fewer than
        // `threads` chunks (both from rounding and from the `min_chunk`
        // floor), and every worker must own a non-empty range or the
        // barriers would wait on idle threads.
        let workers = n.div_ceil(chunk);
        let cells: Vec<WorkerCell> = (0..workers)
            .map(|_| WorkerCell {
                inbox: Mutex::new(Vec::new()),
                out: Mutex::new((Vec::new(), false)),
            })
            .collect();
        // Both barriers include the main thread. `start` opens a step (or,
        // with `running` false, releases the workers to exit); `end` closes
        // it, after which the workers' outboxes are safe to read.
        let start = SpinBarrier::new(workers + 1);
        let end = SpinBarrier::new(workers + 1);
        let running = AtomicBool::new(true);

        let (steps, reason) = std::thread::scope(|scope| {
            for (wi, (cell, chunk_params)) in cells.iter().zip(params.chunks(chunk)).enumerate() {
                let base = wi * chunk;
                let (start, end, running) = (&start, &end, &running);
                scope.spawn(move || {
                    worker_loop(base, chunk_params, cell, start, end, running);
                });
            }

            let outcome = 'run: {
                for t in 1..=config.max_steps {
                    batch.clear();
                    wheel.drain_at(t, batch);
                    obs.on_spike_batch(t, batch.len() as u64);
                    for &(id, w) in batch.iter() {
                        let i = id.index();
                        cells[i / chunk]
                            .inbox
                            .lock()
                            .expect("engine inbox poisoned")
                            .push((i, w));
                    }

                    if O::ENABLED {
                        // Coordinator block time across both barriers: the
                        // step's full compute+sync window as the
                        // coordinator experiences it.
                        let t0 = Instant::now();
                        start.wait();
                        end.wait();
                        obs.on_barrier_wait(t, t0.elapsed().as_nanos() as u64);
                    } else {
                        start.wait();
                        // Workers run Eqs. (1)–(3) over their chunks.
                        end.wait();
                    }
                    rec.add_updates(n as u64);

                    // Merge in chunk order: per-chunk lists are id-sorted,
                    // so the concatenation is globally sorted.
                    fired.clear();
                    let mut armed = false;
                    for cell in &cells {
                        let out = cell.out.lock().expect("engine outbox poisoned");
                        fired.extend_from_slice(&out.0);
                        armed |= out.1;
                    }

                    stop_hit = rec.record_step(t, fired, &config.stop);
                    let deliveries = route_spikes(csr, fired, t, wheel, &mut rec);
                    obs.on_step(
                        t,
                        StepRecord {
                            spikes: fired.len() as u64,
                            deliveries,
                            updates: n as u64,
                        },
                    );
                    if O::ENABLED {
                        obs.on_scheduler(t, wheel.observe());
                    }

                    if stop_hit
                        && !matches!(
                            config.stop,
                            StopCondition::MaxSteps | StopCondition::Quiescent
                        )
                    {
                        break 'run (t, StopReason::ConditionMet);
                    }
                    if wheel.is_empty() && !armed {
                        break 'run (t, StopReason::Quiescent);
                    }
                }
                (config.max_steps, StopReason::MaxStepsReached)
            };

            // Release the pool before leaving the scope.
            running.store(false, Ordering::Release);
            start.wait();
            outcome
        });

        rec.finish(steps, reason, config)
    }
}

/// One persistent worker: waits at `start`, applies its inbox, advances
/// its neuron chunk one step, publishes (fired, armed), waits at `end`.
fn worker_loop(
    base: usize,
    params: &[LifParams],
    cell: &WorkerCell,
    start: &SpinBarrier,
    end: &SpinBarrier,
    running: &AtomicBool,
) {
    let mut voltages: Vec<f64> = params.iter().map(|p| p.v_reset).collect();
    let mut syn: Vec<f64> = vec![0.0; params.len()];
    loop {
        start.wait();
        if !running.load(Ordering::Acquire) {
            return;
        }
        {
            let mut inbox = cell.inbox.lock().expect("engine inbox poisoned");
            for &(i, w) in inbox.iter() {
                syn[i - base] += w;
            }
            inbox.clear();
        }
        {
            let mut out = cell.out.lock().expect("engine outbox poisoned");
            let (local_fired, armed) = &mut *out;
            local_fired.clear();
            *armed = false;
            for (li, p) in params.iter().enumerate() {
                let v = voltages[li];
                let v_hat = v - (v - p.v_reset) * p.decay + syn[li];
                if v_hat > p.v_threshold {
                    local_fired.push(NeuronId((base + li) as u32));
                    voltages[li] = p.v_reset;
                } else {
                    voltages[li] = v_hat;
                }
                syn[li] = 0.0;
                let v_next = voltages[li] - (voltages[li] - p.v_reset) * p.decay;
                *armed |= v_next > p.v_threshold;
            }
        }
        end.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DenseEngine;
    use crate::params::LifParams;

    #[test]
    fn matches_dense_on_a_chain() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 5);
        for w in ids.windows(2) {
            net.connect(w[0], w[1], 1.0, 3).unwrap();
        }
        let cfg = RunConfig::until_quiescent(64).with_raster();
        // min_chunk 1: actually exercise the pool on a 5-neuron net.
        let par = ParallelDenseEngine {
            threads: 4,
            min_chunk: 1,
        }
        .run(&net, &[ids[0]], &cfg)
        .unwrap();
        let seq = DenseEngine.run(&net, &[ids[0]], &cfg).unwrap();
        assert_eq!(par.first_spikes, seq.first_spikes);
        assert_eq!(par.raster, seq.raster);
        assert_eq!(par.steps, seq.steps);
        assert_eq!(par.reason, seq.reason);
    }

    #[test]
    fn one_thread_is_dense() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 2).unwrap();
        let cfg = RunConfig::fixed(10);
        let par = ParallelDenseEngine::new(1).run(&net, &[a], &cfg).unwrap();
        let seq = DenseEngine.run(&net, &[a], &cfg).unwrap();
        assert_eq!(par.first_spikes, seq.first_spikes);
    }

    #[test]
    fn more_threads_than_neurons() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let cfg = RunConfig::fixed(3);
        let r = ParallelDenseEngine {
            threads: 16,
            min_chunk: 1,
        }
        .run(&net, &[a], &cfg)
        .unwrap();
        assert_eq!(r.first_spikes[a.index()], Some(0));
    }
}

//! Thread-parallel time-stepped engine.
//!
//! Each LIF update (Eqs. (1)–(3)) touches only that neuron's state, so a
//! synchronous step is embarrassingly parallel across neurons: the neuron
//! range splits into per-worker chunks, every worker advances its chunk,
//! and spike routing is merged after the step barrier — the same
//! compute/communicate cadence a multi-core neuromorphic chip follows
//! every tick. Results are bit-identical to [`super::DenseEngine`]
//! (verified by property tests): parallelism only reorders independent
//! per-neuron work.
//!
//! Workers are spawned once per run and kept alive across steps,
//! synchronised by a pair of barriers per step. The previous
//! implementation spawned `threads` fresh OS threads *every step*, which
//! cost tens of microseconds per step — orders of magnitude more than the
//! step's arithmetic for small networks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use sgl_observe::{NullObserver, RunObserver, StepRecord};

use super::dense::route_spikes;
use super::wheel::TimeWheel;
use super::{
    check_initial, DenseEngine, Engine, Recorder, RunConfig, RunResult, StopCondition, StopReason,
};
use crate::error::SnnError;
use crate::params::LifParams;
use crate::types::NeuronId;
use crate::Network;

/// Dense engine with per-step neuron-range parallelism over `threads`
/// worker threads (1 = sequential, identical to [`super::DenseEngine`]).
#[derive(Clone, Copy, Debug)]
pub struct ParallelDenseEngine {
    /// Worker threads per step.
    pub threads: usize,
}

impl Default for ParallelDenseEngine {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
        }
    }
}

/// Per-worker mailboxes. The main thread writes `inbox` and reads
/// `fired`/`armed` only while the worker is parked at a barrier, so the
/// mutexes are never contended — they exist to satisfy `Sync`.
struct WorkerCell {
    /// Deliveries for this worker's chunk, in global-batch order
    /// (preserves the accumulation order the dense engine uses).
    inbox: Mutex<Vec<(usize, f64)>>,
    /// (sorted fired ids, armed flag) produced by the last step.
    out: Mutex<(Vec<NeuronId>, bool)>,
}

impl Engine for ParallelDenseEngine {
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        self.run_observed(net, initial_spikes, config, &mut NullObserver)
    }
}

impl ParallelDenseEngine {
    /// [`Engine::run`] with telemetry hooks; see
    /// [`DenseEngine::run_observed`](super::DenseEngine::run_observed).
    /// Additionally reports the coordinator's per-step barrier-block time
    /// via [`RunObserver::on_barrier_wait`] (only when `O::ENABLED`).
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        let n = net.neuron_count();
        let threads = self.threads.max(1).min(n.max(1));
        if threads == 1 {
            // Sequential case: exactly the dense engine, minus the pool.
            // Delegating to the dense `run_observed` keeps the hook
            // cadence (and `on_finish`) identical.
            return DenseEngine.run_observed(net, initial_spikes, config, obs);
        }
        let result = self.run_inner(net, initial_spikes, config, obs, threads)?;
        obs.on_finish(
            result.steps,
            result.stats.spike_events,
            result.stats.synaptic_deliveries,
            result.stats.neuron_updates,
        );
        Ok(result)
    }

    fn run_inner<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        obs: &mut O,
        threads: usize,
    ) -> Result<RunResult, SnnError> {
        let n = net.neuron_count();
        net.validate(false)?;
        check_initial(net, initial_spikes)?;
        let mut rec = Recorder::new(net, config)?;
        let csr = net.csr();
        let params = net.params_slice();

        let mut wheel = TimeWheel::new(net.max_delay());
        let mut batch: Vec<(NeuronId, f64)> = Vec::new();

        let mut fired: Vec<NeuronId> = initial_spikes.to_vec();
        fired.sort_unstable();
        fired.dedup();

        let mut stop_hit = rec.record_step(0, &fired, &config.stop);
        let deliveries = route_spikes(csr, &fired, 0, &mut wheel, &mut rec);
        obs.on_step(
            0,
            StepRecord {
                spikes: fired.len() as u64,
                deliveries,
                updates: 0,
            },
        );
        if O::ENABLED {
            obs.on_scheduler(0, wheel.observe());
        }
        if stop_hit
            && !matches!(
                config.stop,
                StopCondition::MaxSteps | StopCondition::Quiescent
            )
        {
            return rec.finish(0, StopReason::ConditionMet, config);
        }
        let spontaneous = params.iter().any(|p| !p.is_input_driven());
        if wheel.is_empty() && !spontaneous {
            return rec.finish(0, StopReason::Quiescent, config);
        }

        // Partition by chunk size, then count the chunks that actually
        // exist: `ceil(n / threads)`-sized chunks can cover `n` neurons in
        // fewer than `threads` pieces (e.g. n = 5, threads = 4 -> two-wide
        // chunks at 0, 2, 4), and every worker must own a non-empty range
        // or the barriers would wait on idle threads.
        let chunk = n.div_ceil(threads);
        let workers = n.div_ceil(chunk);
        let cells: Vec<WorkerCell> = (0..workers)
            .map(|_| WorkerCell {
                inbox: Mutex::new(Vec::new()),
                out: Mutex::new((Vec::new(), false)),
            })
            .collect();
        // Both barriers include the main thread. `start` opens a step (or,
        // with `running` false, releases the workers to exit); `end` closes
        // it, after which the workers' outboxes are safe to read.
        let start = Barrier::new(workers + 1);
        let end = Barrier::new(workers + 1);
        let running = AtomicBool::new(true);

        let (steps, reason) = std::thread::scope(|scope| {
            for (wi, (cell, chunk_params)) in cells.iter().zip(params.chunks(chunk)).enumerate() {
                let base = wi * chunk;
                let (start, end, running) = (&start, &end, &running);
                scope.spawn(move || {
                    worker_loop(base, chunk_params, cell, start, end, running);
                });
            }

            let outcome = 'run: {
                for t in 1..=config.max_steps {
                    batch.clear();
                    wheel.drain_at(t, &mut batch);
                    obs.on_spike_batch(t, batch.len() as u64);
                    for &(id, w) in &batch {
                        let i = id.index();
                        cells[i / chunk]
                            .inbox
                            .lock()
                            .expect("engine inbox poisoned")
                            .push((i, w));
                    }

                    if O::ENABLED {
                        // Coordinator block time across both barriers: the
                        // step's full compute+sync window as the
                        // coordinator experiences it.
                        let t0 = Instant::now();
                        start.wait();
                        end.wait();
                        obs.on_barrier_wait(t, t0.elapsed().as_nanos() as u64);
                    } else {
                        start.wait();
                        // Workers run Eqs. (1)–(3) over their chunks.
                        end.wait();
                    }
                    rec.add_updates(n as u64);

                    // Merge in chunk order: per-chunk lists are id-sorted,
                    // so the concatenation is globally sorted.
                    fired.clear();
                    let mut armed = false;
                    for cell in &cells {
                        let out = cell.out.lock().expect("engine outbox poisoned");
                        fired.extend_from_slice(&out.0);
                        armed |= out.1;
                    }

                    stop_hit = rec.record_step(t, &fired, &config.stop);
                    let deliveries = route_spikes(csr, &fired, t, &mut wheel, &mut rec);
                    obs.on_step(
                        t,
                        StepRecord {
                            spikes: fired.len() as u64,
                            deliveries,
                            updates: n as u64,
                        },
                    );
                    if O::ENABLED {
                        obs.on_scheduler(t, wheel.observe());
                    }

                    if stop_hit
                        && !matches!(
                            config.stop,
                            StopCondition::MaxSteps | StopCondition::Quiescent
                        )
                    {
                        break 'run (t, StopReason::ConditionMet);
                    }
                    if wheel.is_empty() && !armed {
                        break 'run (t, StopReason::Quiescent);
                    }
                }
                (config.max_steps, StopReason::MaxStepsReached)
            };

            // Release the pool before leaving the scope.
            running.store(false, Ordering::Release);
            start.wait();
            outcome
        });

        rec.finish(steps, reason, config)
    }
}

/// One persistent worker: waits at `start`, applies its inbox, advances
/// its neuron chunk one step, publishes (fired, armed), waits at `end`.
fn worker_loop(
    base: usize,
    params: &[LifParams],
    cell: &WorkerCell,
    start: &Barrier,
    end: &Barrier,
    running: &AtomicBool,
) {
    let mut voltages: Vec<f64> = params.iter().map(|p| p.v_reset).collect();
    let mut syn: Vec<f64> = vec![0.0; params.len()];
    loop {
        start.wait();
        if !running.load(Ordering::Acquire) {
            return;
        }
        {
            let mut inbox = cell.inbox.lock().expect("engine inbox poisoned");
            for &(i, w) in inbox.iter() {
                syn[i - base] += w;
            }
            inbox.clear();
        }
        {
            let mut out = cell.out.lock().expect("engine outbox poisoned");
            let (local_fired, armed) = &mut *out;
            local_fired.clear();
            *armed = false;
            for (li, p) in params.iter().enumerate() {
                let v = voltages[li];
                let v_hat = v - (v - p.v_reset) * p.decay + syn[li];
                if v_hat > p.v_threshold {
                    local_fired.push(NeuronId((base + li) as u32));
                    voltages[li] = p.v_reset;
                } else {
                    voltages[li] = v_hat;
                }
                syn[li] = 0.0;
                let v_next = voltages[li] - (voltages[li] - p.v_reset) * p.decay;
                *armed |= v_next > p.v_threshold;
            }
        }
        end.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DenseEngine;
    use crate::params::LifParams;

    #[test]
    fn matches_dense_on_a_chain() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 5);
        for w in ids.windows(2) {
            net.connect(w[0], w[1], 1.0, 3).unwrap();
        }
        let cfg = RunConfig::until_quiescent(64).with_raster();
        let par = ParallelDenseEngine { threads: 4 }
            .run(&net, &[ids[0]], &cfg)
            .unwrap();
        let seq = DenseEngine.run(&net, &[ids[0]], &cfg).unwrap();
        assert_eq!(par.first_spikes, seq.first_spikes);
        assert_eq!(par.raster, seq.raster);
        assert_eq!(par.steps, seq.steps);
        assert_eq!(par.reason, seq.reason);
    }

    #[test]
    fn one_thread_is_dense() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 2).unwrap();
        let cfg = RunConfig::fixed(10);
        let par = ParallelDenseEngine { threads: 1 }
            .run(&net, &[a], &cfg)
            .unwrap();
        let seq = DenseEngine.run(&net, &[a], &cfg).unwrap();
        assert_eq!(par.first_spikes, seq.first_spikes);
    }

    #[test]
    fn more_threads_than_neurons() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let cfg = RunConfig::fixed(3);
        let r = ParallelDenseEngine { threads: 16 }
            .run(&net, &[a], &cfg)
            .unwrap();
        assert_eq!(r.first_spikes[a.index()], Some(0));
    }
}

//! Thread-parallel time-stepped engine.
//!
//! Each LIF update (Eqs. (1)–(3)) touches only that neuron's state, so a
//! synchronous step is embarrassingly parallel across neurons: the neuron
//! range splits into per-thread chunks, every thread advances its chunk,
//! and spike routing is merged after the barrier — the same
//! compute/communicate cadence a multi-core neuromorphic chip follows
//! every tick. Results are bit-identical to [`super::DenseEngine`]
//! (verified by property tests): parallelism only reorders independent
//! per-neuron work.

use std::collections::HashMap;

use super::{check_initial, Engine, Recorder, RunConfig, RunResult, StopCondition, StopReason};
use crate::error::SnnError;
use crate::network::Network;
use crate::types::{NeuronId, Time};

/// Dense engine with per-step neuron-range parallelism over `threads`
/// worker threads (1 = sequential, identical to [`super::DenseEngine`]).
#[derive(Clone, Copy, Debug)]
pub struct ParallelDenseEngine {
    /// Worker threads per step.
    pub threads: usize,
}

impl Default for ParallelDenseEngine {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
        }
    }
}

impl Engine for ParallelDenseEngine {
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        let threads = self.threads.max(1);
        net.validate(false)?;
        check_initial(net, initial_spikes)?;
        let mut rec = Recorder::new(net, config)?;
        let n = net.neuron_count();

        let mut pending: HashMap<Time, Vec<(NeuronId, f64)>> = HashMap::new();
        let mut voltages: Vec<f64> = net.neuron_ids().map(|id| net.params(id).v_reset).collect();

        let mut fired: Vec<NeuronId> = initial_spikes.to_vec();
        fired.sort_unstable();
        fired.dedup();

        let mut stop_hit = rec.record_step(0, &fired, &config.stop);
        route(net, &fired, 0, &mut pending, &mut rec);
        if stop_hit && !matches!(config.stop, StopCondition::MaxSteps | StopCondition::Quiescent) {
            return rec.finish(0, StopReason::ConditionMet, config);
        }
        let spontaneous = net.neuron_ids().any(|id| !net.params(id).is_input_driven());
        if pending.is_empty() && !spontaneous {
            return rec.finish(0, StopReason::Quiescent, config);
        }

        let mut syn = vec![0.0f64; n];
        let chunk = n.div_ceil(threads).max(1);
        for t in 1..=config.max_steps {
            if let Some(batch) = pending.remove(&t) {
                for (id, w) in batch {
                    syn[id.index()] += w;
                }
            }

            // Parallel phase: each thread updates a disjoint neuron chunk,
            // collecting its own fired list and armed flag.
            let mut results: Vec<(Vec<NeuronId>, bool)> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for (ci, (vchunk, schunk)) in voltages
                    .chunks_mut(chunk)
                    .zip(syn.chunks_mut(chunk))
                    .enumerate()
                {
                    handles.push(scope.spawn(move || {
                        let base = ci * chunk;
                        let mut local_fired = Vec::new();
                        let mut armed = false;
                        for (i, (v, s)) in vchunk.iter_mut().zip(schunk.iter_mut()).enumerate() {
                            let id = NeuronId((base + i) as u32);
                            let p = net.params(id);
                            let v_hat = *v - (*v - p.v_reset) * p.decay + *s;
                            if v_hat > p.v_threshold {
                                local_fired.push(id);
                                *v = p.v_reset;
                            } else {
                                *v = v_hat;
                            }
                            *s = 0.0;
                            let v_next = *v - (*v - p.v_reset) * p.decay;
                            armed |= v_next > p.v_threshold;
                        }
                        (local_fired, armed)
                    }));
                }
                for h in handles {
                    results.push(h.join().expect("engine worker panicked"));
                }
            });
            rec.add_updates(n as u64);
            // Merge in chunk order: per-chunk lists are already id-sorted.
            fired.clear();
            let mut armed = false;
            for (list, a) in results {
                fired.extend(list);
                armed |= a;
            }

            stop_hit = rec.record_step(t, &fired, &config.stop);
            route(net, &fired, t, &mut pending, &mut rec);

            if stop_hit
                && !matches!(config.stop, StopCondition::MaxSteps | StopCondition::Quiescent)
            {
                return rec.finish(t, StopReason::ConditionMet, config);
            }
            if pending.is_empty() && !armed {
                return rec.finish(t, StopReason::Quiescent, config);
            }
        }

        rec.finish(config.max_steps, StopReason::MaxStepsReached, config)
    }
}

fn route(
    net: &Network,
    fired: &[NeuronId],
    t: Time,
    pending: &mut HashMap<Time, Vec<(NeuronId, f64)>>,
    rec: &mut Recorder,
) {
    let mut deliveries = 0u64;
    for &id in fired {
        for s in net.synapses_from(id) {
            pending
                .entry(t + Time::from(s.delay))
                .or_default()
                .push((s.target, s.weight));
            deliveries += 1;
        }
    }
    rec.add_deliveries(deliveries);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DenseEngine;
    use crate::params::LifParams;

    #[test]
    fn matches_dense_on_a_chain() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 5);
        for w in ids.windows(2) {
            net.connect(w[0], w[1], 1.0, 3).unwrap();
        }
        let cfg = RunConfig::until_quiescent(64).with_raster();
        let par = ParallelDenseEngine { threads: 4 }
            .run(&net, &[ids[0]], &cfg)
            .unwrap();
        let seq = DenseEngine.run(&net, &[ids[0]], &cfg).unwrap();
        assert_eq!(par.first_spikes, seq.first_spikes);
        assert_eq!(par.raster, seq.raster);
        assert_eq!(par.steps, seq.steps);
        assert_eq!(par.reason, seq.reason);
    }

    #[test]
    fn one_thread_is_dense() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 2).unwrap();
        let cfg = RunConfig::fixed(10);
        let par = ParallelDenseEngine { threads: 1 }.run(&net, &[a], &cfg).unwrap();
        let seq = DenseEngine.run(&net, &[a], &cfg).unwrap();
        assert_eq!(par.first_spikes, seq.first_spikes);
    }

    #[test]
    fn more_threads_than_neurons() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let cfg = RunConfig::fixed(3);
        let r = ParallelDenseEngine { threads: 16 }.run(&net, &[a], &cfg).unwrap();
        assert_eq!(r.first_spikes[a.index()], Some(0));
    }
}

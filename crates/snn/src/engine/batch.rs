//! Batched execution: one network, many runs, recycled state.
//!
//! The paper's headline workloads are many independent wavefronts over
//! one network — APSP launches the §3 SSSP circuit from every source, and
//! §2.3 aggregates chips executing the same graph-as-SNN in parallel. For
//! those workloads per-run setup (network validation, wheel and buffer
//! allocation) dominates once the runs themselves are fast, which is the
//! same observation the SpiNNaker "road to scalability" line makes: graph
//! search throughput comes from reusing the loaded network across
//! queries, not from per-query programming.
//!
//! This module provides that reuse in three pieces:
//!
//! * [`RunScratch`] — every transient buffer a run needs (time wheel,
//!   voltages, synaptic accumulators, spike lists). [`RunScratch::reset`]
//!   restores the exact observable state a fresh construction would
//!   have, *without* releasing capacity, so recycled runs are
//!   bit-identical to fresh ones (a proptest in `tests/batch_identity.rs`
//!   holds all three engines to this).
//! * [`BatchRunner`] — executes a set of [`RunSpec`]s against one shared
//!   network across a worker pool; each worker owns one scratch and
//!   claims runs off an atomic work-stealing index, so a slow wavefront
//!   never stalls the others. The network is validated once per batch,
//!   not once per run.
//! * [`run_jobs`] — the same pool for heterogeneous jobs (each with its
//!   own network), used by the §7 approximate k-hop ensemble where every
//!   scale rounds edge lengths differently.
//!
//! Engine selection is per batch via [`EngineChoice`]: `Auto` picks the
//! event engine unless the network forces dense stepping (spontaneous
//! neurons) or is dense enough that per-step sorting of touched neurons
//! costs more than a linear sweep.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sgl_observe::{BatchSummary, NullObserver};

use super::wheel::TimeWheel;
use super::{BitplaneEngine, DenseEngine, EventEngine, ParallelDenseEngine, RunConfig, RunResult};
use crate::error::SnnError;
use crate::network::Network;
use crate::types::{NeuronId, Time};

/// Reusable per-run engine state: everything a run allocates that is not
/// part of its [`RunResult`].
///
/// A scratch starts empty and is sized to the network on first use; the
/// engines call [`Self::reset`] on entry, so any scratch can be handed to
/// any run against any network. Reset clears — it never shrinks — so a
/// worker cycling through same-sized runs reaches a steady state with no
/// allocation at all.
#[derive(Debug, Default)]
pub struct RunScratch {
    /// Pending synaptic deliveries (calendar queue over delays).
    pub(super) wheel: TimeWheel,
    /// Per-step drained delivery batch.
    pub(super) batch: Vec<(NeuronId, f64)>,
    /// Neurons that fired in the current step (sorted).
    pub(super) fired: Vec<NeuronId>,
    /// Membrane potentials, reset to each neuron's `v_reset`.
    pub(super) voltages: Vec<f64>,
    /// Event engine: last step each neuron's lazy decay was applied.
    pub(super) last_update: Vec<Time>,
    /// Synaptic input accumulator (all zeros between steps); the event
    /// engine uses it as its per-step `accum`.
    pub(super) syn: Vec<f64>,
    /// Event engine: membership bitmap for `touched_ids`.
    pub(super) dirty: Vec<bool>,
    /// Dense engine: indices with nonzero `syn` this step.
    pub(super) touched_idx: Vec<usize>,
    /// Event engine: neurons receiving input this step.
    pub(super) touched_ids: Vec<NeuronId>,
    /// Bit-plane engine: ring of spike-frontier bit-planes
    /// (`ring_len * words` u64 words).
    pub(super) bp_planes: Vec<u64>,
    /// Bit-plane engine: per-ring-slot "any bit set" flags.
    pub(super) bp_nonempty: Vec<bool>,
    /// Bit-plane engine: the current step's fired bits (`words` words).
    pub(super) bp_fired_words: Vec<u64>,
    /// Bit-plane engine: beyond-horizon deliveries by arrival time (the
    /// ring's analogue of the wheel's overflow map).
    pub(super) bp_overflow: BTreeMap<Time, Vec<(NeuronId, f64)>>,
}

impl RunScratch {
    /// An empty scratch; the first run sizes it to its network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores the state a fresh engine construction would produce for
    /// `net`: wheel re-sized to the network's delay horizon and emptied
    /// (including calendar overflow), voltages at `v_reset`, accumulators
    /// zeroed, spike lists cleared. Capacity is retained, so resetting
    /// between same-sized runs never allocates.
    pub fn reset(&mut self, net: &Network) {
        let n = net.neuron_count();
        self.wheel.reset(net.max_delay());
        self.batch.clear();
        self.fired.clear();
        self.voltages.clear();
        self.voltages
            .extend(net.params_slice().iter().map(|p| p.v_reset));
        self.last_update.clear();
        self.last_update.resize(n, 0);
        self.syn.clear();
        self.syn.resize(n, 0.0);
        self.dirty.clear();
        self.dirty.resize(n, false);
        self.touched_idx.clear();
        self.touched_ids.clear();
        // The bit-plane engine re-sizes (zero-filling) these after reset,
        // so clearing to empty — capacity retained — is both cheap for the
        // other engines and pristine for the next bit-plane run.
        self.bp_planes.clear();
        self.bp_nonempty.clear();
        self.bp_fired_words.clear();
        self.bp_overflow.clear();
    }
}

/// Density crossover for [`EngineChoice::Auto`], as an inverse fraction
/// of `n²`: networks with `m >= n² / 4` synapses route to the bit-plane
/// engine, sparser ones to the event engine.
///
/// Measured, not guessed (BENCH_engines gather-mode gate networks,
/// `n ∈ {256, 1024}`, delays 1–9): at `m = n²/4` the bit-plane engine
/// beats the event engine ~3.8x (saturated frontiers make touched-set
/// bookkeeping pure overhead), and it stays ahead down to `m = n²/16`
/// (~1.5x at `n = 256`, ~3.9x at `n = 1024`). On the sparse delay-encoded
/// SSSP nets (`m = 4n`) the event engine wins ~1.4x by skipping quiet
/// steps. The threshold stays at a conservative `n²/4` because the
/// bit-plane advantage below it depends on *activity* density (saturated
/// frontiers), which edge density alone does not guarantee — and the
/// event engine is the asymptotic winner the paper banks on wherever
/// sparsity gives it a chance.
const DENSE_CROSSOVER_INV: u128 = 4;

/// Temporal-density gate for the bit-plane route: graph density alone
/// does not justify dense stepping when delays are huge, because a
/// delay-encoded wavefront then leaves almost every step quiet and the
/// event engine skips those steps entirely (a 2-neuron, delay-5000 edge
/// is "half of all possible edges" yet runs 5000× fewer updates
/// event-driven). Dense stepping walks at most this many empty steps
/// between any fire and its furthest in-flight arrival.
const DENSE_MAX_DELAY: u32 = 64;

/// Default monolithic-footprint budget for [`EngineChoice::Auto`]'s
/// partitioned route, in bytes. Networks whose [`Network::memory_bytes`]
/// stays within the budget run on a single engine (partitioning buys
/// nothing and costs cut traffic); larger ones route to
/// [`crate::partition::PartitionedEngine`], which bounds the per-address-
/// space footprint. Callers with real budgets (a chip's SRAM, a cgroup
/// limit) pass their own via [`EngineChoice::resolve_with_partition_budget`].
pub const DEFAULT_PARTITION_MEMORY_BUDGET: usize = 1 << 30;

/// Most partitions the `Auto` gate will pick on its own. Explicit
/// [`EngineChoice::Partitioned`] choices are not clamped.
const AUTO_MAX_PARTS: usize = 16;

/// Which engine a batch (or job) runs on.
#[derive(Clone, Copy, Debug, Default)]
pub enum EngineChoice {
    /// Pick per network: [`DenseEngine`] when the network has spontaneous
    /// neurons (the event engine rejects them; the reference engine is
    /// the conservative choice), [`BitplaneEngine`] when the topology is
    /// dense in space — `m >= n² /` [`DENSE_CROSSOVER_INV`], a measured
    /// crossover — *and* in time (`max_delay <=` [`DENSE_MAX_DELAY`]),
    /// so a word-parallel frontier sweep beats touched-set bookkeeping;
    /// [`EventEngine`] otherwise — the right default for the sparse,
    /// delay-encoded graph circuits the paper builds.
    #[default]
    Auto,
    /// Always the reference dense engine.
    Dense,
    /// Always the event-driven engine (fails on spontaneous neurons).
    Event,
    /// Always the bit-plane dense engine (dense semantics, wheel-free
    /// bitmask spike routing; see DESIGN.md "Bit-plane execution").
    Bitplane,
    /// Always the given thread-parallel dense engine. Note the batch
    /// runner already parallelizes *across* runs; nesting a parallel
    /// engine inside it oversubscribes unless the batch pool is small.
    Parallel(ParallelDenseEngine),
    /// Always the partitioned engine with `parts` partitions (default
    /// cut strategy; fails on spontaneous neurons, like `Event`). `Auto`
    /// also routes here when the monolithic footprint would exceed the
    /// partition memory budget, picking `parts` and `threads` together
    /// from the machine's core count.
    Partitioned {
        /// Number of partitions to compile and drive.
        parts: usize,
        /// Worker threads for the superstep driver (1 = sequential).
        threads: usize,
    },
}

impl EngineChoice {
    /// Resolves `Auto` against a concrete network (identity for explicit
    /// choices), with the default partition memory budget. Exposed so
    /// callers can log or override what a batch would pick.
    #[must_use]
    pub fn resolve(self, net: &Network) -> Self {
        self.resolve_with_partition_budget(net, DEFAULT_PARTITION_MEMORY_BUDGET)
    }

    /// [`Self::resolve`] with an explicit memory budget (bytes) for the
    /// partitioned route: an `Auto` network whose
    /// [`Network::memory_bytes`] exceeds `budget` resolves to
    /// [`Self::Partitioned`] with enough partitions to bring each
    /// partition's share back under budget (capped; spontaneous networks
    /// still take the dense route, which the partitioned engine cannot
    /// replace). The partitioned pick is core-aware — see
    /// [`Self::resolve_with_budget_and_cores`], which this calls with
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn resolve_with_partition_budget(self, net: &Network, budget: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.resolve_with_budget_and_cores(net, budget, cores)
    }

    /// [`Self::resolve_with_partition_budget`] with the core count made
    /// explicit (and testable). When the memory gate fires, the pick is
    /// core-aware: `threads` is the largest worker count up to `cores`
    /// (never more than the memory-required partition count) for which
    /// rounding the partition count up to a multiple of `threads` stays
    /// within the `Auto` cap — so every worker owns the same number of
    /// partitions and no superstep waits on a straggler by construction.
    /// On a single-core machine this degrades to the former pick exactly:
    /// the memory-required partition count, driven sequentially.
    #[must_use]
    pub fn resolve_with_budget_and_cores(self, net: &Network, budget: usize, cores: usize) -> Self {
        match self {
            Self::Auto => {
                let n = net.neuron_count() as u128;
                let spontaneous = net.params_slice().iter().any(|p| !p.is_input_driven());
                // u128 arithmetic: `n * n` overflows u64 from n = 2^32,
                // and usize on 32-bit targets far earlier.
                let near_complete =
                    n > 0 && (net.synapse_count() as u128) * DENSE_CROSSOVER_INV >= n * n;
                let memory = net.memory_bytes();
                if spontaneous {
                    Self::Dense
                } else if memory > budget && budget > 0 {
                    let base = memory.div_ceil(budget).clamp(2, AUTO_MAX_PARTS);
                    let (parts, threads) = (1..=cores.clamp(1, base))
                        .rev()
                        .map(|t| (base.div_ceil(t) * t, t))
                        .find(|&(parts, _)| parts <= AUTO_MAX_PARTS)
                        .unwrap_or((base, 1));
                    Self::Partitioned { parts, threads }
                } else if near_complete && net.max_delay() <= DENSE_MAX_DELAY {
                    Self::Bitplane
                } else {
                    Self::Event
                }
            }
            explicit => explicit,
        }
    }

    /// Whether the resolved engine needs event-mode network validation.
    fn event_mode(self) -> bool {
        matches!(self, Self::Event | Self::Partitioned { .. })
    }
}

/// One run of a batch: which neurons spike at `t = 0` and how the run is
/// configured/stopped. The network is shared batch-wide, so swapping the
/// stimulus is how APSP swaps sources without rebuilding anything.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Neurons with induced spikes at `t = 0`.
    pub initial_spikes: Vec<NeuronId>,
    /// Run configuration (budget, stop condition, raster).
    pub config: RunConfig,
}

impl RunSpec {
    /// A spec inducing `initial_spikes` at `t = 0` under `config`.
    #[must_use]
    pub fn new(initial_spikes: Vec<NeuronId>, config: RunConfig) -> Self {
        Self {
            initial_spikes,
            config,
        }
    }
}

/// Executes many runs against one shared [`Network`] with per-worker
/// recycled [`RunScratch`]es.
///
/// ```
/// use sgl_snn::{Network, LifParams, NeuronId};
/// use sgl_snn::engine::{BatchRunner, RunConfig, RunSpec};
///
/// let mut net = Network::new();
/// let ids = net.add_neurons(LifParams::gate_at_least(1), 3);
/// net.connect(ids[0], ids[1], 1.0, 2).unwrap();
/// net.connect(ids[1], ids[2], 1.0, 3).unwrap();
///
/// // One spec per source: the network is built (and validated) once.
/// let specs: Vec<RunSpec> = ids
///     .iter()
///     .map(|&s| RunSpec::new(vec![s], RunConfig::until_quiescent(100)))
///     .collect();
/// let results = BatchRunner::new(&net).run(&specs).unwrap();
/// assert_eq!(results[0].first_spike(ids[2]), Some(5));
/// assert_eq!(results[2].first_spike(ids[2]), Some(0));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner<'a> {
    net: &'a Network,
    threads: usize,
    choice: EngineChoice,
}

impl<'a> BatchRunner<'a> {
    /// A runner over `net` with [`EngineChoice::Auto`] and one worker per
    /// available core (capped at 8, like [`ParallelDenseEngine`]).
    #[must_use]
    pub fn new(net: &'a Network) -> Self {
        Self {
            net,
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
            choice: EngineChoice::Auto,
        }
    }

    /// Sets the worker-pool size (clamped to at least 1; a single worker
    /// runs the batch inline on the calling thread).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the engine-selection heuristic.
    #[must_use]
    pub fn with_engine(mut self, choice: EngineChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Runs every spec, returning results in spec order. The network is
    /// validated once; each worker recycles one scratch across the runs
    /// it claims.
    ///
    /// # Errors
    /// Same failure modes as [`super::Engine::run`] (the first failing
    /// run's error is returned; specs are independent, so which one
    /// surfaces is unspecified when several fail).
    pub fn run(&self, specs: &[RunSpec]) -> Result<Vec<RunResult>, SnnError> {
        let choice = self.choice.resolve(self.net);
        self.net.validate(choice.event_mode())?;
        let net = self.net;
        drive(specs.len(), self.threads, |i, scratch| {
            run_resolved(choice, net, &specs[i], scratch)
        })
    }

    /// [`Self::run`] plus a [`BatchSummary`] of the per-run makespan and
    /// spike distributions.
    ///
    /// # Errors
    /// Same failure modes as [`Self::run`].
    pub fn run_summarized(
        &self,
        specs: &[RunSpec],
    ) -> Result<(Vec<RunResult>, BatchSummary), SnnError> {
        let results = self.run(specs)?;
        let summary = summarize(&results);
        Ok((results, summary))
    }
}

/// Executes heterogeneous `(network, spec)` jobs over the same
/// work-stealing pool and scratch recycling as [`BatchRunner`]. Engine
/// choice resolves (and the network validates) per job, since every job
/// may carry a different network — the approximate k-hop ensemble runs
/// one differently-rounded network per scale.
///
/// # Errors
/// Same failure modes as [`BatchRunner::run`].
pub fn run_jobs(
    jobs: &[(Network, RunSpec)],
    threads: usize,
    choice: EngineChoice,
) -> Result<Vec<RunResult>, SnnError> {
    drive(jobs.len(), threads, |i, scratch| {
        let (net, spec) = &jobs[i];
        let resolved = choice.resolve(net);
        net.validate(resolved.event_mode())?;
        run_resolved(resolved, net, spec, scratch)
    })
}

/// Rolls a slice of results into a [`BatchSummary`] (makespan and spike
/// distributions plus exact work totals).
#[must_use]
pub fn summarize(results: &[RunResult]) -> BatchSummary {
    let mut summary = BatchSummary::new();
    for r in results {
        summary.record_run(
            r.steps,
            r.stats.spike_events,
            r.stats.synaptic_deliveries,
            r.stats.neuron_updates,
        );
    }
    summary
}

/// Dispatches one pre-validated run to the resolved engine's hot path.
fn run_resolved(
    choice: EngineChoice,
    net: &Network,
    spec: &RunSpec,
    scratch: &mut RunScratch,
) -> Result<RunResult, SnnError> {
    let obs = &mut NullObserver;
    match choice {
        // `Auto` cannot survive `resolve`; dense is the safe fallback.
        EngineChoice::Dense | EngineChoice::Auto => {
            DenseEngine.run_core(net, &spec.initial_spikes, &spec.config, scratch, obs)
        }
        EngineChoice::Event => {
            EventEngine.run_core(net, &spec.initial_spikes, &spec.config, scratch, obs)
        }
        EngineChoice::Bitplane => {
            BitplaneEngine.run_core(net, &spec.initial_spikes, &spec.config, scratch, obs)
        }
        EngineChoice::Parallel(engine) => {
            engine.run_core(net, &spec.initial_spikes, &spec.config, scratch, obs)
        }
        // Compiles a fresh plan per run: the partitioned engine targets
        // nets too large for one address space, where the run dwarfs the
        // compile. Batch callers wanting compile-once reuse should hold a
        // `PartitionPlan` and call `PartitionPlan::run` themselves.
        EngineChoice::Partitioned { parts, threads } => {
            use crate::engine::Engine;
            crate::partition::PartitionedEngine::new(parts)
                .with_threads(threads)
                .run(net, &spec.initial_spikes, &spec.config)
        }
    }
}

/// The worker pool: `workers` threads claim indices `0..count` off an
/// atomic counter (work stealing — a slow run never stalls the others,
/// unlike static chunking), each with one recycled scratch. Results land
/// in per-index slots; the pool is scoped, so one batch costs `workers`
/// thread spawns total, not one per run.
fn drive<F>(count: usize, threads: usize, job: F) -> Result<Vec<RunResult>, SnnError>
where
    F: Fn(usize, &mut RunScratch) -> Result<RunResult, SnnError> + Sync,
{
    let workers = threads.max(1).min(count.max(1));
    if workers == 1 {
        let mut scratch = RunScratch::new();
        return (0..count).map(|i| job(i, &mut scratch)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunResult, SnnError>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = RunScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    // Each slot is written exactly once, by the worker
                    // that claimed its index; the mutex exists for `Sync`.
                    *slots[i].lock().expect("batch slot poisoned") = Some(job(i, &mut scratch));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("batch slot poisoned")
                .expect("every index below `count` was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, StopReason};
    use crate::params::LifParams;

    fn chain(n: usize, delay: u32) -> (Network, Vec<NeuronId>) {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), n);
        for w in ids.windows(2) {
            net.connect(w[0], w[1], 1.0, delay).unwrap();
        }
        (net, ids)
    }

    #[test]
    fn reset_clears_wheel_overflow_state() {
        // A delay beyond the wheel's horizon cap parks deliveries in the
        // calendar overflow; a recycled scratch must not leak them (or the
        // overflow-hit counter) into the next run.
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 5000).unwrap();

        let mut scratch = RunScratch::new();
        let r = DenseEngine
            .run_with_scratch(&net, &[a], &RunConfig::fixed(3), &mut scratch)
            .unwrap();
        assert_eq!(r.reason, StopReason::MaxStepsReached);
        // The t=0 spike scheduled a delivery at t=5000: still parked.
        let stats = scratch.wheel.observe();
        assert_eq!(stats.overflow_entries, 1);
        assert_eq!(stats.in_flight, 1);
        assert!(stats.overflow_hits >= 1);

        scratch.reset(&net);
        let stats = scratch.wheel.observe();
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.occupied_slots, 0);
        assert_eq!(stats.overflow_entries, 0);
        assert_eq!(stats.overflow_hits, 0);

        // And the recycled scratch behaves exactly like a fresh one.
        let recycled = DenseEngine
            .run_with_scratch(&net, &[a], &RunConfig::until_quiescent(6000), &mut scratch)
            .unwrap();
        let fresh = DenseEngine
            .run(&net, &[a], &RunConfig::until_quiescent(6000))
            .unwrap();
        assert_eq!(recycled, fresh);
    }

    #[test]
    fn batch_matches_sequential_per_source() {
        let (net, ids) = chain(6, 3);
        let specs: Vec<RunSpec> = ids
            .iter()
            .map(|&s| RunSpec::new(vec![s], RunConfig::until_quiescent(100).with_raster()))
            .collect();
        let batch = BatchRunner::new(&net).with_threads(3).run(&specs).unwrap();
        for (spec, got) in specs.iter().zip(&batch) {
            let want = EventEngine
                .run(&net, &spec.initial_spikes, &spec.config)
                .unwrap();
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn auto_picks_event_for_sparse_input_driven_nets() {
        let (net, _) = chain(4, 1);
        assert!(matches!(
            EngineChoice::Auto.resolve(&net),
            EngineChoice::Event
        ));
    }

    #[test]
    fn auto_picks_dense_for_spontaneous_neurons() {
        let mut net = Network::new();
        net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        assert!(matches!(
            EngineChoice::Auto.resolve(&net),
            EngineChoice::Dense
        ));
        // And a batch over it still runs (the event engine would reject).
        let specs = [RunSpec::new(vec![], RunConfig::fixed(3))];
        let results = BatchRunner::new(&net).run(&specs).unwrap();
        assert_eq!(results[0].spike_counts[0], 3);
    }

    #[test]
    fn partition_gate_is_core_aware() {
        let (net, _) = chain(64, 2);
        let m = net.memory_bytes();
        let pick = |budget: usize, cores: usize| match EngineChoice::Auto
            .resolve_with_budget_and_cores(&net, budget, cores)
        {
            EngineChoice::Partitioned { parts, threads } => (parts, threads),
            other => panic!("expected Partitioned, got {other:?}"),
        };
        // Overshoot far past the cap: base clamps to 16; threads divide
        // parts so every worker owns the same number of partitions.
        assert_eq!(pick(1, 1), (16, 1));
        assert_eq!(pick(1, 4), (16, 4));
        // No multiple of 5 fits within the cap at base 16: the gate steps
        // down to 4 workers rather than over-partitioning past the cap.
        assert_eq!(pick(1, 5), (16, 4));
        assert_eq!(pick(1, 16), (16, 16));
        // Threads never exceed the partition count.
        assert_eq!(pick(1, 64), (16, 16));
        // Minimal overshoot: base 2, single-core keeps the old pick.
        assert_eq!(pick(m - 1, 1), (2, 1));
        assert_eq!(pick(m - 1, 2), (2, 2));
        assert_eq!(pick(m - 1, 3), (2, 2));
        // Degenerate core count is treated as one.
        assert_eq!(pick(m - 1, 0), (2, 1));
    }

    #[test]
    fn auto_routes_over_budget_nets_to_partitioned() {
        let (net, ids) = chain(64, 2);
        // A budget below the net's footprint forces the partitioned route;
        // the partition count scales with the overshoot and stays clamped.
        let tiny = net.memory_bytes() / 3;
        let choice = EngineChoice::Auto.resolve_with_partition_budget(&net, tiny);
        match choice {
            EngineChoice::Partitioned { parts, threads } => {
                assert!((2..=16).contains(&parts), "parts = {parts}");
                assert!(threads >= 1 && parts % threads == 0, "threads = {threads}");
            }
            other => panic!("expected Partitioned, got {other:?}"),
        }
        // A generous budget leaves the sparse net on the event engine, and
        // a zero budget disables the gate entirely.
        assert!(matches!(
            EngineChoice::Auto.resolve_with_partition_budget(&net, usize::MAX),
            EngineChoice::Event
        ));
        assert!(matches!(
            EngineChoice::Auto.resolve_with_partition_budget(&net, 0),
            EngineChoice::Event
        ));
        // Spontaneous neurons still win: partitioned is event-style and
        // would reject them, so the dense route takes precedence.
        let mut spont = Network::new();
        spont.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        assert!(matches!(
            EngineChoice::Auto.resolve_with_partition_budget(&spont, 1),
            EngineChoice::Dense
        ));
        // And the routed choice runs, bit-identical to the event engine.
        let spec = RunSpec::new(vec![ids[0]], RunConfig::until_quiescent(300));
        let got = run_resolved(choice, &net, &spec, &mut RunScratch::new()).unwrap();
        let want = EventEngine
            .run(&net, &spec.initial_spikes, &spec.config)
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn auto_picks_bitplane_for_near_complete_topologies() {
        // Complete digraph on 4 nodes: 12 synapses >= 16 / 4.
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 4);
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    net.connect(u, v, 0.1, 1).unwrap();
                }
            }
        }
        assert!(matches!(
            EngineChoice::Auto.resolve(&net),
            EngineChoice::Bitplane
        ));
        // And the batch result is (exactly) the dense engine's.
        let specs = [RunSpec::new(
            vec![ids[0]],
            RunConfig::fixed(5).with_raster(),
        )];
        let results = BatchRunner::new(&net).run(&specs).unwrap();
        let dense = DenseEngine
            .run(&net, &specs[0].initial_spikes, &specs[0].config)
            .unwrap();
        assert_eq!(results[0], dense);
    }

    #[test]
    fn auto_crossover_math_survives_huge_counts() {
        // Regression: the old `n * n / 2` test overflowed usize for large
        // n (or u64 semantics on 32-bit targets); the u128 rewrite must
        // stay exact at any realistic scale. Exercise `resolve` right at
        // the boundary with a synthetic count via a real (tiny) network —
        // and the arithmetic itself at u64-overflowing magnitudes.
        let n: u128 = 1 << 33; // n² = 2^66 overflows u64
        let m_below = (n * n / DENSE_CROSSOVER_INV) - 1;
        let m_at = n * n / DENSE_CROSSOVER_INV;
        assert!(m_below * DENSE_CROSSOVER_INV < n * n);
        assert!(m_at * DENSE_CROSSOVER_INV >= n * n);
    }

    #[test]
    fn explicit_choice_survives_resolve() {
        let (net, _) = chain(3, 1);
        assert!(matches!(
            EngineChoice::Dense.resolve(&net),
            EngineChoice::Dense
        ));
        assert!(matches!(
            EngineChoice::Parallel(ParallelDenseEngine::new(2)).resolve(&net),
            EngineChoice::Parallel(_)
        ));
    }

    #[test]
    fn run_jobs_handles_heterogeneous_networks() {
        // Different sizes and delay horizons per job, single pool.
        let jobs: Vec<(Network, RunSpec)> = [(3usize, 2u32), (5, 7), (2, 5000)]
            .iter()
            .map(|&(n, d)| {
                let (net, ids) = chain(n, d);
                let spec = RunSpec::new(vec![ids[0]], RunConfig::until_quiescent(20_000));
                (net, spec)
            })
            .collect();
        let results = run_jobs(&jobs, 2, EngineChoice::Auto).unwrap();
        assert_eq!(results.len(), 3);
        for ((net, spec), got) in jobs.iter().zip(&results) {
            let want = EventEngine
                .run(net, &spec.initial_spikes, &spec.config)
                .unwrap();
            assert_eq!(got, &want);
        }
        // Sanity: the long-delay job really exercised the overflow path.
        assert_eq!(results[2].first_spikes[1], Some(5000));
    }

    #[test]
    fn invalid_spec_surfaces_error() {
        let (net, _) = chain(2, 1);
        let specs = [RunSpec::new(
            vec![NeuronId(99)],
            RunConfig::until_quiescent(10),
        )];
        assert!(matches!(
            BatchRunner::new(&net).run(&specs),
            Err(SnnError::UnknownNeuron(_))
        ));
    }

    #[test]
    fn empty_batch_is_empty() {
        let (net, _) = chain(2, 1);
        let results = BatchRunner::new(&net).run(&[]).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn summary_reconciles_with_results() {
        let (net, ids) = chain(5, 2);
        let specs: Vec<RunSpec> = ids
            .iter()
            .map(|&s| RunSpec::new(vec![s], RunConfig::until_quiescent(100)))
            .collect();
        let (results, summary) = BatchRunner::new(&net)
            .with_threads(2)
            .run_summarized(&specs)
            .unwrap();
        assert_eq!(summary.runs, results.len() as u64);
        assert_eq!(
            summary.total_spikes,
            results.iter().map(|r| r.stats.spike_events).sum::<u64>()
        );
        // Worst per-source makespan: the full-chain wavefront, 4 hops × 2.
        assert_eq!(summary.makespan_steps(), Some(8));
    }
}

//! Bit-plane dense engine: spike frontiers as `u64` bit-planes in a
//! per-delay ring buffer, branch-free LIF sweeps over flat arrays.
//!
//! The dense engine pays a time wheel round-trip per synaptic delivery
//! (push at fire time, pop at arrival time). This engine removes the
//! wheel entirely: the set of neurons that fired at step `t` is stored as
//! one bit-plane (`ceil(n / 64)` words) in a ring of `horizon + 1`
//! planes, and at step `t` the arrivals due are reconstructed by walking
//! the planes still inside the delay window — for the plane of firing
//! time `t_s`, the synapses with delay `t - t_s` (a precomputed
//! per-source delay bucket, see [`crate::network::BitplaneTopology`]).
//! Spike tests become mask extraction (`trailing_zeros` iteration), the
//! per-neuron LIF update is a branch-free select over flat `f64` arrays,
//! and for OR-mask-eligible networks delivery is pure bitmask OR-ing
//! with no floating point at all.
//!
//! Bit-identity with the wheel engines is by construction: planes are
//! visited in firing-time order (ascending `t_s` = descending delay),
//! sources within a plane ascend (bit order), synapses within a
//! `(source, delay)` bucket keep CSR relative order, and beyond-horizon
//! deliveries drain from an ordered map after the in-horizon window —
//! exactly the wheel's drain order, so per-target `f64` accumulation
//! order (and therefore every `RunResult` bit) matches the dense engine.

use std::collections::BTreeMap;

use sgl_observe::{NullObserver, RunObserver, SchedulerStats, StepRecord};

use super::batch::RunScratch;
use super::{check_initial, Engine, Recorder, RunConfig, RunResult, StopCondition, StopReason};
use crate::error::SnnError;
use crate::network::{BitplaneTopology, Network};
use crate::types::{NeuronId, Time};

/// The bit-plane dense engine. Same semantics (and bit-identical
/// [`RunResult`]s, work counters included) as [`super::DenseEngine`];
/// picked by [`super::EngineChoice::Auto`] for dense topologies, where its
/// wheel-free delivery and word-parallel frontier handling win (see
/// `BENCH_engines` and DESIGN.md "Bit-plane execution").
#[derive(Clone, Copy, Debug, Default)]
pub struct BitplaneEngine;

impl Engine for BitplaneEngine {
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        self.run_observed(net, initial_spikes, config, &mut NullObserver)
    }
}

/// Transient per-run state borrowed out of the scratch, plus the counters
/// the quiescence test needs. Keeping it in one struct lets the delivery
/// and scheduling phases be real functions instead of macro-sized closures.
struct Frontier<'a> {
    topo: &'a BitplaneTopology,
    /// Ring of `horizon + 1` bit-planes, `words` words each; the plane
    /// for firing time `t` lives at slot `t % ring_len`.
    planes: &'a mut [u64],
    /// Per-slot "any bit set" flags, to skip empty planes in the window.
    nonempty: &'a mut [bool],
    /// Beyond-horizon deliveries, keyed by arrival time — the ring
    /// equivalent of the wheel's overflow map (same drain position, same
    /// insertion order).
    overflow: &'a mut BTreeMap<Time, Vec<(NeuronId, f64)>>,
    /// Deliveries currently scheduled (ring + overflow); `pending == 0`
    /// exactly when the wheel's `is_empty()` would hold.
    pending: u64,
    /// Cumulative overflow-path deliveries (telemetry only).
    overflow_hits: u64,
    ring_len: Time,
    words: usize,
}

impl Frontier<'_> {
    /// Records the sorted `fired` set as the plane for step `t` and parks
    /// beyond-horizon fan-out in the overflow map. Returns the number of
    /// deliveries scheduled (the step's full routed fan-out, matching
    /// [`super::dense::route_spikes`]).
    fn schedule_fires(&mut self, fired: &[NeuronId], t: Time, rec: &mut Recorder) -> u64 {
        let slot = (t % self.ring_len) as usize;
        // The slot last held the plane of `t - ring_len`, which has aged
        // out of the delivery window; reclaim it.
        if self.nonempty[slot] {
            self.planes[slot * self.words..(slot + 1) * self.words].fill(0);
            self.nonempty[slot] = false;
        }
        let plane = &mut self.planes[slot * self.words..(slot + 1) * self.words];
        let mut deliveries = 0u64;
        let mut any = false;
        for &id in fired {
            let i = id.index();
            let hdeg = u64::from(self.topo.horizon_degree[i]);
            if hdeg > 0 {
                plane[i >> 6] |= 1u64 << (i & 63);
                any = true;
            }
            deliveries += hdeg;
            let (os, oe) = (
                self.topo.overflow_offsets[i],
                self.topo.overflow_offsets[i + 1],
            );
            for &(d, target, w) in &self.topo.overflow[os..oe] {
                self.overflow
                    .entry(t + Time::from(d))
                    .or_default()
                    .push((target, w));
            }
            deliveries += (oe - os) as u64;
            self.overflow_hits += (oe - os) as u64;
        }
        self.nonempty[slot] |= any;
        self.pending += deliveries;
        rec.add_deliveries(deliveries);
        deliveries
    }

    /// Gather-mode delivery: accumulates every arrival due at `t` into
    /// `syn`, in wheel drain order. Returns the number drained.
    fn deliver_gather(&mut self, t: Time, syn: &mut [f64]) -> u64 {
        let mut drained = 0u64;
        let topo = self.topo;
        // Planes in firing-time order: ascending t_s == descending delay,
        // exactly the order the wheel slot accumulated its pushes.
        for ts in t.saturating_sub(Time::from(topo.horizon))..t {
            let slot = (ts % self.ring_len) as usize;
            if !self.nonempty[slot] {
                continue;
            }
            let d = (t - ts) as u32;
            let plane = &self.planes[slot * self.words..(slot + 1) * self.words];
            for (w_idx, &pw) in plane.iter().enumerate() {
                let mut word = pw;
                while word != 0 {
                    let s = (w_idx << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    for b in &topo.buckets[topo.bucket_offsets[s]..topo.bucket_offsets[s + 1]] {
                        if b.delay == d {
                            for k in b.start..b.end {
                                syn[topo.targets[k] as usize] += topo.weights[k];
                            }
                            drained += (b.end - b.start) as u64;
                            break;
                        }
                        if b.delay > d {
                            break; // buckets ascend by delay
                        }
                    }
                }
            }
        }
        if let Some(batch) = self.overflow.remove(&t) {
            drained += batch.len() as u64;
            for (id, w) in batch {
                syn[id.index()] += w;
            }
        }
        self.pending -= drained;
        drained
    }

    /// OR-mask delivery: the step's fired plane is the OR of the due
    /// buckets' target masks (every arrival fires its target; see
    /// [`BitplaneTopology`] eligibility). No floating point. Returns the
    /// number of deliveries drained.
    fn deliver_masks(&mut self, t: Time, masks: &[u64], fired_words: &mut [u64]) -> u64 {
        let mut drained = 0u64;
        let topo = self.topo;
        for ts in t.saturating_sub(Time::from(topo.horizon))..t {
            let slot = (ts % self.ring_len) as usize;
            if !self.nonempty[slot] {
                continue;
            }
            let d = (t - ts) as u32;
            let plane = &self.planes[slot * self.words..(slot + 1) * self.words];
            for (w_idx, &pw) in plane.iter().enumerate() {
                let mut word = pw;
                while word != 0 {
                    let s = (w_idx << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let (bs, be) = (topo.bucket_offsets[s], topo.bucket_offsets[s + 1]);
                    for (b, bucket) in topo.buckets[bs..be].iter().enumerate() {
                        if bucket.delay == d {
                            let row = &masks[(bs + b) * self.words..(bs + b + 1) * self.words];
                            for (fw, &mw) in fired_words.iter_mut().zip(row) {
                                *fw |= mw;
                            }
                            drained += (bucket.end - bucket.start) as u64;
                            break;
                        }
                        if bucket.delay > d {
                            break;
                        }
                    }
                }
            }
        }
        if let Some(batch) = self.overflow.remove(&t) {
            drained += batch.len() as u64;
            for (id, _) in batch {
                fired_words[id.index() >> 6] |= 1u64 << (id.index() & 63);
            }
        }
        self.pending -= drained;
        drained
    }

    /// Scheduler snapshot in wheel terms: scheduled deliveries in flight,
    /// live planes in the ring, parked overflow times, cumulative
    /// overflow-path deliveries.
    fn observe(&self) -> SchedulerStats {
        SchedulerStats {
            in_flight: self.pending,
            occupied_slots: self.nonempty.iter().filter(|&&x| x).count() as u64,
            overflow_entries: self.overflow.len() as u64,
            overflow_hits: self.overflow_hits,
        }
    }
}

/// Extracts the set bits of `fired_words` as ascending [`NeuronId`]s.
fn extract_fired(fired_words: &[u64], fired: &mut Vec<NeuronId>) {
    for (w_idx, &fw) in fired_words.iter().enumerate() {
        let mut word = fw;
        while word != 0 {
            let i = (w_idx << 6) + word.trailing_zeros() as usize;
            word &= word - 1;
            fired.push(NeuronId(i as u32));
        }
    }
}

impl BitplaneEngine {
    /// [`Engine::run`] with telemetry hooks (monomorphized away for
    /// [`NullObserver`], like the other engines).
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        let mut scratch = RunScratch::new();
        self.run_with_scratch_observed(net, initial_spikes, config, &mut scratch, obs)
    }

    /// [`Engine::run`] over recycled buffers (see
    /// [`super::DenseEngine::run_with_scratch`]).
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_scratch(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
    ) -> Result<RunResult, SnnError> {
        self.run_with_scratch_observed(net, initial_spikes, config, scratch, &mut NullObserver)
    }

    /// [`Self::run_with_scratch`] with telemetry hooks.
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_scratch_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        net.validate(false)?;
        let result = self.run_core(net, initial_spikes, config, scratch, obs)?;
        obs.on_finish(
            result.steps,
            result.stats.spike_events,
            result.stats.synaptic_deliveries,
            result.stats.neuron_updates,
        );
        Ok(result)
    }

    /// The hot path, minus network validation (the batch runner validates
    /// the shared network once per batch rather than once per run).
    pub(super) fn run_core<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        check_initial(net, initial_spikes)?;
        let mut rec = Recorder::new(net, config)?;
        let n = net.neuron_count();
        let topo = net.bitplane();
        let params = net.params_slice();
        let words = topo.words;
        let ring_len = Time::from(topo.horizon) + 1;

        scratch.reset(net);
        scratch.bp_planes.resize(ring_len as usize * words, 0);
        scratch.bp_nonempty.resize(ring_len as usize, false);
        scratch.bp_fired_words.resize(words, 0);
        let RunScratch {
            fired,
            voltages,
            syn,
            bp_planes,
            bp_nonempty,
            bp_fired_words: fired_words,
            bp_overflow,
            ..
        } = scratch;
        let mut fr = Frontier {
            topo,
            planes: bp_planes,
            nonempty: bp_nonempty,
            overflow: bp_overflow,
            pending: 0,
            overflow_hits: 0,
            ring_len,
            words,
        };

        fired.extend_from_slice(initial_spikes);
        fired.sort_unstable();
        fired.dedup();

        // t = 0: induced input spikes.
        let mut stop_hit = rec.record_step(0, fired, &config.stop);
        let deliveries = fr.schedule_fires(fired, 0, &mut rec);
        obs.on_step(
            0,
            StepRecord {
                spikes: fired.len() as u64,
                deliveries,
                updates: 0,
            },
        );
        if O::ENABLED {
            obs.on_scheduler(0, fr.observe());
        }
        if stop_hit
            && !matches!(
                config.stop,
                StopCondition::MaxSteps | StopCondition::Quiescent
            )
        {
            return rec.finish(0, StopReason::ConditionMet, config);
        }
        let spontaneous = params.iter().any(|p| !p.is_input_driven());
        if fr.pending == 0 && !spontaneous {
            return rec.finish(0, StopReason::Quiescent, config);
        }

        for t in 1..=config.max_steps {
            let mut armed = false;
            if let Some(masks) = &topo.masks {
                // OR-mask mode: delivery IS the spike test. Voltages are
                // provably pinned at zero (no neuron is ever sub-threshold
                // charged), so there is no sweep and nothing is armed.
                fired_words.fill(0);
                let drained = fr.deliver_masks(t, masks, fired_words);
                obs.on_spike_batch(t, drained);
            } else {
                let drained = fr.deliver_gather(t, syn);
                obs.on_spike_batch(t, drained);

                // Branch-free LIF sweep: flat reads, select-style writes,
                // fired bits built per 64-neuron word.
                for (w_idx, fw) in fired_words.iter_mut().enumerate() {
                    let base = w_idx << 6;
                    let lim = (n - base).min(64);
                    let mut word = 0u64;
                    for b in 0..lim {
                        let i = base + b;
                        let p = &params[i];
                        let v = voltages[i];
                        // Eq. (1): decay toward reset, then add input.
                        let v_hat = v - (v - p.v_reset) * p.decay + syn[i];
                        syn[i] = 0.0;
                        // Eq. (2)/(3): threshold test and reset-on-fire.
                        let fire = v_hat > p.v_threshold;
                        let v_new = if fire { p.v_reset } else { v_hat };
                        voltages[i] = v_new;
                        word |= u64::from(fire) << b;
                        armed |= v_new - (v_new - p.v_reset) * p.decay > p.v_threshold;
                    }
                    *fw = word;
                }
            }
            // Dense update semantics in both modes: n potential updates
            // per step (mask mode performs them implicitly — every
            // voltage is a known constant zero — but the counter reports
            // the work a synchronous core would do, matching DenseEngine
            // bit-for-bit).
            rec.add_updates(n as u64);

            fired.clear();
            extract_fired(fired_words, fired);

            stop_hit = rec.record_step(t, fired, &config.stop);
            let deliveries = fr.schedule_fires(fired, t, &mut rec);
            obs.on_step(
                t,
                StepRecord {
                    spikes: fired.len() as u64,
                    deliveries,
                    updates: n as u64,
                },
            );
            if O::ENABLED {
                obs.on_scheduler(t, fr.observe());
            }

            if stop_hit
                && !matches!(
                    config.stop,
                    StopCondition::MaxSteps | StopCondition::Quiescent
                )
            {
                return rec.finish(t, StopReason::ConditionMet, config);
            }
            if fr.pending == 0 && !armed {
                return rec.finish(t, StopReason::Quiescent, config);
            }
        }

        rec.finish(config.max_steps, StopReason::MaxStepsReached, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DenseEngine;
    use crate::params::LifParams;

    fn assert_matches_dense(net: &Network, init: &[NeuronId], cfg: &RunConfig) {
        let dense = DenseEngine.run(net, init, cfg).unwrap();
        let bp = BitplaneEngine.run(net, init, cfg).unwrap();
        assert_eq!(dense, bp);
    }

    #[test]
    fn single_synapse_delay_is_exact() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 7).unwrap();
        let r = BitplaneEngine
            .run(&net, &[a], &RunConfig::until_quiescent(100))
            .unwrap();
        assert_eq!(r.first_spike(b), Some(7));
        assert_eq!(r.steps, 7);
        assert_eq!(r.reason, StopReason::Quiescent);
        assert_matches_dense(&net, &[a], &RunConfig::until_quiescent(100).with_raster());
    }

    #[test]
    fn mask_mode_engages_on_unit_gate_fanout() {
        // All-positive unit weights over gate_at_least(1): OR-eligible.
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 5);
        for i in 0..4 {
            net.connect(ids[i], ids[i + 1], 1.0, 1 + i as u32).unwrap();
            net.connect(ids[i], ids[4], 1.0, 2).unwrap();
        }
        assert!(net.bitplane().uses_masks());
        assert_matches_dense(
            &net,
            &[ids[0]],
            &RunConfig::until_quiescent(50).with_raster(),
        );
    }

    #[test]
    fn inhibitory_weights_force_gather_mode() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 1).unwrap();
        net.connect(a, b, -1.0, 1).unwrap();
        assert!(!net.bitplane().uses_masks());
        assert_matches_dense(&net, &[a], &RunConfig::until_quiescent(10).with_raster());
    }

    #[test]
    fn sub_threshold_weights_force_gather_mode() {
        // Positive but not above-threshold: a lone arrival must NOT fire,
        // so OR-mask mode is ineligible.
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(2));
        net.connect(a, b, 1.0, 1).unwrap();
        assert!(!net.bitplane().uses_masks());
        let r = BitplaneEngine
            .run(&net, &[a], &RunConfig::until_quiescent(10))
            .unwrap();
        assert_eq!(r.first_spike(b), None);
    }

    #[test]
    fn spontaneous_neurons_run_dense_identical() {
        let mut net = Network::new();
        let s = net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(s, b, 1.0, 1).unwrap();
        assert_matches_dense(&net, &[], &RunConfig::fixed(5).with_raster());
    }

    #[test]
    fn beyond_horizon_delay_takes_overflow_path() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 5000).unwrap();
        assert_eq!(net.bitplane().overflow_synapses(), 1);
        let r = BitplaneEngine
            .run(&net, &[a], &RunConfig::until_quiescent(6000))
            .unwrap();
        assert_eq!(r.first_spike(b), Some(5000));
        assert_matches_dense(&net, &[a], &RunConfig::until_quiescent(6000).with_raster());
    }

    #[test]
    fn ring_wraps_past_the_horizon() {
        // A self-loop latch runs far longer than the ring length, so every
        // slot is reclaimed and rewritten many times.
        let mut net = Network::new();
        let m = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(m, m, 1.0, 3).unwrap();
        let r = BitplaneEngine
            .run(&net, &[m], &RunConfig::fixed(50).with_raster())
            .unwrap();
        assert_eq!(r.spike_counts[m.index()], 17); // t = 0, 3, 6, ..., 48
        assert_matches_dense(&net, &[m], &RunConfig::fixed(50).with_raster());
    }

    #[test]
    fn empty_network_is_quiescent_at_zero() {
        let net = Network::new();
        let r = BitplaneEngine
            .run(&net, &[], &RunConfig::until_quiescent(10))
            .unwrap();
        assert_eq!(r.steps, 0);
        assert_eq!(r.reason, StopReason::Quiescent);
    }

    #[test]
    fn strict_budget_exhaustion_errors() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.connect(a, a, 1.0, 1).unwrap();
        net.set_terminal(b);
        let err = BitplaneEngine.run(&net, &[a], &RunConfig::until_terminal(5).strict());
        assert!(matches!(err, Err(SnnError::StepLimitExceeded { .. })));
    }

    #[test]
    fn recycled_scratch_is_bit_identical() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 3);
        net.connect(ids[0], ids[1], 1.0, 5000).unwrap(); // overflow path
        net.connect(ids[1], ids[2], 1.0, 2).unwrap();
        let cfg = RunConfig::until_quiescent(6000).with_raster();
        let mut scratch = RunScratch::new();
        // First run parks overflow state; the recycled second run must
        // still match a fresh one exactly.
        BitplaneEngine
            .run_with_scratch(&net, &[ids[0]], &RunConfig::fixed(3), &mut scratch)
            .unwrap();
        let recycled = BitplaneEngine
            .run_with_scratch(&net, &[ids[0]], &cfg, &mut scratch)
            .unwrap();
        let fresh = BitplaneEngine.run(&net, &[ids[0]], &cfg).unwrap();
        assert_eq!(recycled, fresh);
    }
}

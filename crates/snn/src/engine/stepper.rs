//! Incremental execution: drive a network one time step at a time.
//!
//! The batch engines run to a stop condition; interactive uses —
//! visualisers, debuggers, co-simulation with an environment that injects
//! spikes as it goes — need control between steps. [`Stepper`] exposes the
//! dense dynamics as an iterator-like object: call [`Stepper::step`] to
//! advance one tick and observe who fired; call [`Stepper::inject`] to
//! force spikes at the *next* step (external input electrodes).

use super::wheel::TimeWheel;
use crate::network::Network;
use crate::types::{NeuronId, Time};

/// An incremental dense simulator over a borrowed network.
#[derive(Clone, Debug)]
pub struct Stepper<'n> {
    net: &'n Network,
    voltages: Vec<f64>,
    pending: TimeWheel,
    /// Per-neuron synaptic input for the current step; entries listed in
    /// `touched` are reset after each step so the buffer is reusable.
    syn: Vec<f64>,
    touched: Vec<usize>,
    batch: Vec<(NeuronId, f64)>,
    injected: Vec<NeuronId>,
    now: Time,
    fired: Vec<NeuronId>,
}

impl<'n> Stepper<'n> {
    /// Starts a run with spikes induced in `initial_spikes` at `t = 0`
    /// (the `t = 0` firing is processed immediately, so [`Self::now`]
    /// starts at 0 with [`Self::fired`] reporting the induced spikes).
    ///
    /// # Panics
    /// Panics on out-of-range initial neurons.
    #[must_use]
    pub fn new(net: &'n Network, initial_spikes: &[NeuronId]) -> Self {
        let mut fired: Vec<NeuronId> = initial_spikes.to_vec();
        for &i in &fired {
            assert!(i.index() < net.neuron_count(), "unknown neuron {i}");
        }
        fired.sort_unstable();
        fired.dedup();
        let n = net.neuron_count();
        let voltages = net.params_slice().iter().map(|p| p.v_reset).collect();
        let mut s = Self {
            net,
            voltages,
            pending: TimeWheel::new(net.max_delay()),
            syn: vec![0.0; n],
            touched: Vec::new(),
            batch: Vec::new(),
            injected: Vec::new(),
            now: 0,
            fired: fired.clone(),
        };
        s.route(&fired);
        s
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Neurons that fired at [`Self::now`], sorted by id.
    #[must_use]
    pub fn fired(&self) -> &[NeuronId] {
        &self.fired
    }

    /// Membrane voltage of `id` at the current step.
    #[must_use]
    pub fn voltage(&self, id: NeuronId) -> f64 {
        self.voltages[id.index()]
    }

    /// Forces `id` to spike at the *next* step (in addition to whatever
    /// its dynamics produce) — an external stimulation electrode.
    pub fn inject(&mut self, id: NeuronId) {
        assert!(id.index() < self.net.neuron_count(), "unknown neuron {id}");
        self.injected.push(id);
    }

    /// True when no spikes are in flight and nothing is injected — the
    /// network can never fire again (for input-driven neurons).
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty() && self.injected.is_empty()
    }

    /// Advances one time step; returns the neurons that fired.
    pub fn step(&mut self) -> &[NeuronId] {
        self.now += 1;
        let t = self.now;
        let n = self.net.neuron_count();
        self.batch.clear();
        self.pending.drain_at(t, &mut self.batch);
        for &(id, w) in &self.batch {
            let i = id.index();
            if self.syn[i] == 0.0 {
                self.touched.push(i);
            }
            self.syn[i] += w;
        }
        let injected = std::mem::take(&mut self.injected);

        let params = self.net.params_slice();
        self.fired.clear();
        for v in 0..n {
            let id = NeuronId(v as u32);
            let p = &params[v];
            let volt = self.voltages[v];
            let v_hat = volt - (volt - p.v_reset) * p.decay + self.syn[v];
            if v_hat > p.v_threshold || injected.contains(&id) {
                self.fired.push(id);
                self.voltages[v] = p.v_reset;
            } else {
                self.voltages[v] = v_hat;
            }
        }
        for &i in &self.touched {
            self.syn[i] = 0.0;
        }
        self.touched.clear();
        let fired = std::mem::take(&mut self.fired);
        self.route(&fired);
        self.fired = fired;
        &self.fired
    }

    fn route(&mut self, fired: &[NeuronId]) {
        for &id in fired {
            for s in self.net.csr().out(id.index()) {
                self.pending
                    .schedule(self.now + Time::from(s.delay), s.target, s.weight);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DenseEngine, Engine, RunConfig};
    use crate::params::LifParams;

    #[test]
    fn stepping_matches_batch_engine() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 4);
        net.connect(ids[0], ids[1], 1.0, 2).unwrap();
        net.connect(ids[1], ids[2], 1.0, 3).unwrap();
        net.connect(ids[2], ids[3], 1.0, 1).unwrap();
        let batch = DenseEngine
            .run(&net, &[ids[0]], &RunConfig::fixed(10).with_raster())
            .unwrap();
        let raster = batch.raster.unwrap();

        let mut stepper = Stepper::new(&net, &[ids[0]]);
        assert_eq!(stepper.fired(), &[ids[0]]);
        for t in 1..=10u64 {
            let fired = stepper.step().to_vec();
            assert_eq!(fired, raster.spikes_at(t), "t = {t}");
        }
    }

    #[test]
    fn voltage_observation_between_steps() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let acc = net.add_neuron(LifParams::integrator(2.5));
        net.connect(a, acc, 1.0, 1).unwrap();
        net.connect(a, a, 1.0, 2).unwrap(); // a refires every 2 steps
        let mut s = Stepper::new(&net, &[a]);
        s.step();
        assert_eq!(s.voltage(acc), 1.0);
        s.step();
        s.step();
        assert_eq!(s.voltage(acc), 2.0);
    }

    #[test]
    fn injection_forces_spikes() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 1).unwrap();
        let mut s = Stepper::new(&net, &[]);
        assert!(s.quiescent());
        s.inject(a);
        assert!(!s.quiescent());
        assert_eq!(s.step(), &[a]);
        assert_eq!(s.step(), &[b]);
        assert!(s.quiescent());
        assert!(s.step().is_empty());
    }

    #[test]
    fn injected_neuron_resets_voltage() {
        let mut net = Network::new();
        let acc = net.add_neuron(LifParams::integrator(5.0));
        let src = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(src, acc, 2.0, 1).unwrap();
        let mut s = Stepper::new(&net, &[src]);
        s.step();
        assert_eq!(s.voltage(acc), 2.0);
        s.inject(acc); // forced spike despite sub-threshold voltage
        s.step();
        assert_eq!(s.voltage(acc), 0.0); // reset by the forced firing
    }
}

//! Event-driven engine: work proportional to spike traffic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::{check_initial, Engine, Recorder, RunConfig, RunResult, StopCondition, StopReason};
use crate::error::SnnError;
use crate::network::Network;
use crate::types::{NeuronId, Time};

/// Event-driven engine with lazy voltage decay.
///
/// Only neurons that receive synaptic input in a given step are touched;
/// decay over the intervening quiet interval `Δ` is applied in closed form,
/// `v ← v_reset + (v - v_reset)(1 - τ)^Δ`. This is exact because between
/// inputs an input-driven neuron's voltage moves monotonically toward
/// `v_reset ≤ v_threshold` and therefore cannot cross the threshold, so
/// firing can only happen at input-arrival steps.
///
/// Requires every neuron to satisfy `v_reset <= v_threshold`
/// ([`crate::LifParams::is_input_driven`]); the run fails with
/// [`SnnError::SpontaneousNeuron`] otherwise.
///
/// This engine embodies the event-driven-communication argument of §2.1:
/// its work counters grow with spike events and synaptic deliveries, not
/// with `neurons × steps`, which is why delay-encoded algorithms run in
/// time `O(L + m)` rather than `O(n · L)` in practice.
#[derive(Clone, Copy, Debug, Default)]
pub struct EventEngine;

/// A synaptic delivery scheduled for a future step. Ordered by (time,
/// target, weight-bits) so heap pops are deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Delivery {
    time: Time,
    target: NeuronId,
    weight_bits: u64,
}

impl Delivery {
    fn new(time: Time, target: NeuronId, weight: f64) -> Self {
        Self {
            time,
            target,
            // Total order over finite weights; sign-magnitude flip makes the
            // bit order match numeric order, though any total order works
            // for determinism.
            weight_bits: {
                let b = weight.to_bits();
                if b >> 63 == 1 {
                    !b
                } else {
                    b | (1 << 63)
                }
            },
        }
    }

    fn weight(self) -> f64 {
        let b = self.weight_bits;
        f64::from_bits(if b >> 63 == 1 { b & !(1 << 63) } else { !b })
    }
}

impl Engine for EventEngine {
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        net.validate(true)?;
        check_initial(net, initial_spikes)?;
        let mut rec = Recorder::new(net, config)?;
        let n = net.neuron_count();

        let mut heap: BinaryHeap<Reverse<Delivery>> = BinaryHeap::new();
        let mut voltages: Vec<f64> = net
            .neuron_ids()
            .map(|id| net.params(id).v_reset)
            .collect();
        let mut last_update: Vec<Time> = vec![0; n];

        let mut fired: Vec<NeuronId> = initial_spikes.to_vec();
        fired.sort_unstable();
        fired.dedup();

        let mut stop_hit = rec.record_step(0, &fired, &config.stop);
        let mut deliveries = 0u64;
        for &id in &fired {
            for s in net.synapses_from(id) {
                heap.push(Reverse(Delivery::new(
                    Time::from(s.delay),
                    s.target,
                    s.weight,
                )));
                deliveries += 1;
            }
        }
        rec.add_deliveries(deliveries);
        if stop_hit && !matches!(config.stop, StopCondition::MaxSteps | StopCondition::Quiescent) {
            return rec.finish(0, StopReason::ConditionMet, config);
        }

        let mut last_active: Time = 0;
        let mut accum: Vec<f64> = vec![0.0; n];
        let mut touched: Vec<NeuronId> = Vec::new();

        while let Some(&Reverse(next)) = heap.peek() {
            let t = next.time;
            if t > config.max_steps {
                break;
            }

            // Drain and accumulate every delivery arriving at step t.
            let mut batch_deliveries = 0u64;
            while let Some(&Reverse(d)) = heap.peek() {
                if d.time != t {
                    break;
                }
                heap.pop();
                let i = d.target.index();
                if accum[i] == 0.0 && !touched.contains(&d.target) {
                    touched.push(d.target);
                }
                accum[i] += d.weight();
                batch_deliveries += 1;
            }
            touched.sort_unstable();
            rec.add_updates(touched.len() as u64);
            let _ = batch_deliveries; // deliveries were counted when pushed

            // Update each touched neuron: lazy decay, add input, threshold.
            fired.clear();
            for &id in &touched {
                let i = id.index();
                let p = net.params(id);
                let dt = t - last_update[i];
                let v0 = voltages[i];
                // dt == 0 cannot happen (events batch per step), and
                // decay 0 keeps the voltage; both leave v0 untouched.
                let decayed = if dt == 0 || p.decay == 0.0 {
                    v0
                } else if p.decay == 1.0 {
                    p.v_reset
                } else {
                    p.v_reset + (v0 - p.v_reset) * (1.0 - p.decay).powi(dt as i32)
                };
                let v_hat = decayed + accum[i];
                if v_hat > p.v_threshold {
                    fired.push(id);
                    voltages[i] = p.v_reset;
                } else {
                    voltages[i] = v_hat;
                }
                last_update[i] = t;
                accum[i] = 0.0;
            }
            touched.clear();
            last_active = t;

            stop_hit = rec.record_step(t, &fired, &config.stop);
            let mut pushed = 0u64;
            for &id in &fired {
                for s in net.synapses_from(id) {
                    heap.push(Reverse(Delivery::new(
                        t + Time::from(s.delay),
                        s.target,
                        s.weight,
                    )));
                    pushed += 1;
                }
            }
            rec.add_deliveries(pushed);

            if stop_hit
                && !matches!(config.stop, StopCondition::MaxSteps | StopCondition::Quiescent)
            {
                return rec.finish(t, StopReason::ConditionMet, config);
            }
        }

        if heap.is_empty() {
            rec.finish(last_active, StopReason::Quiescent, config)
        } else {
            rec.finish(config.max_steps, StopReason::MaxStepsReached, config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    #[test]
    fn delivery_weight_roundtrip() {
        for &w in &[0.0, 1.0, -1.0, 3.5, -2.25, 1e-9, -1e9] {
            let d = Delivery::new(3, NeuronId(1), w);
            assert_eq!(d.weight(), w, "weight {w} did not roundtrip");
        }
    }

    #[test]
    fn delivery_ordering_by_time_then_target() {
        let a = Delivery::new(1, NeuronId(5), 1.0);
        let b = Delivery::new(2, NeuronId(0), 1.0);
        let c = Delivery::new(1, NeuronId(6), 1.0);
        assert!(a < b);
        assert!(a < c);
    }

    #[test]
    fn matches_dense_on_delay_chain() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 3);
        net.connect(ids[0], ids[1], 1.0, 4).unwrap();
        net.connect(ids[1], ids[2], 1.0, 6).unwrap();
        let r = EventEngine
            .run(&net, &[ids[0]], &RunConfig::until_quiescent(100))
            .unwrap();
        assert_eq!(r.first_spike(ids[2]), Some(10));
        assert_eq!(r.steps, 10);
        assert_eq!(r.reason, StopReason::Quiescent);
    }

    #[test]
    fn rejects_spontaneous_neurons() {
        let mut net = Network::new();
        net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        assert!(matches!(
            EventEngine.run(&net, &[], &RunConfig::until_quiescent(10)),
            Err(SnnError::SpontaneousNeuron(_))
        ));
    }

    #[test]
    fn lazy_partial_decay_is_exact() {
        // tau = 0.5: 0.6 arrives at t=1, then 0.6 at t=4.
        // v(1)=0.6, decayed to t=4: 0.6 * 0.5^3 = 0.075; +0.6 = 0.675 < 0.9.
        // Then 0.6 at t=5: 0.675*0.5 + 0.6 = 0.9375 > 0.9 -> fires at 5.
        let mut net = Network::new();
        let src = net.add_neuron(LifParams::gate_at_least(1));
        let leaky = net.add_neuron(LifParams {
            v_reset: 0.0,
            v_threshold: 0.9,
            decay: 0.5,
        });
        net.connect(src, leaky, 0.6, 1).unwrap();
        net.connect(src, leaky, 0.6, 4).unwrap();
        net.connect(src, leaky, 0.6, 5).unwrap();
        let r = EventEngine
            .run(&net, &[src], &RunConfig::until_quiescent(10))
            .unwrap();
        assert_eq!(r.first_spike(leaky), Some(5));
    }

    #[test]
    fn latch_until_budget() {
        let mut net = Network::new();
        let m = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(m, m, 1.0, 1).unwrap();
        let r = EventEngine.run(&net, &[m], &RunConfig::fixed(15)).unwrap();
        assert_eq!(r.spike_counts[m.index()], 16);
        assert_eq!(r.reason, StopReason::MaxStepsReached);
        assert_eq!(r.steps, 15);
    }

    #[test]
    fn updates_only_touched_neurons() {
        // 1000 idle neurons, activity only along a 2-neuron path: event
        // engine must not pay for the idle ones.
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 50).unwrap();
        net.add_neurons(LifParams::gate_at_least(1), 1000);
        let r = EventEngine
            .run(&net, &[a], &RunConfig::until_quiescent(1000))
            .unwrap();
        assert_eq!(r.stats.neuron_updates, 1); // only b, once
        assert_eq!(r.first_spike(b), Some(50));
    }
}

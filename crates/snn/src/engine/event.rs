//! Event-driven engine: work proportional to spike traffic.

use sgl_observe::{NullObserver, RunObserver, StepRecord};

use super::batch::RunScratch;
use super::dense::route_spikes;
use super::{check_initial, Engine, Recorder, RunConfig, RunResult, StopCondition, StopReason};
use crate::error::SnnError;
use crate::network::Network;
use crate::types::{NeuronId, Time};

/// Event-driven engine with lazy voltage decay.
///
/// Only neurons that receive synaptic input in a given step are touched;
/// decay over the intervening quiet interval `Δ` is applied in closed form,
/// `v ← v_reset + (v - v_reset)(1 - τ)^Δ`. This is exact because between
/// inputs an input-driven neuron's voltage moves monotonically toward
/// `v_reset ≤ v_threshold` and therefore cannot cross the threshold, so
/// firing can only happen at input-arrival steps.
///
/// Requires every neuron to satisfy `v_reset <= v_threshold`
/// ([`crate::LifParams::is_input_driven`]); the run fails with
/// [`SnnError::SpontaneousNeuron`] otherwise.
///
/// This engine embodies the event-driven-communication argument of §2.1:
/// its work counters grow with spike events and synaptic deliveries, not
/// with `neurons × steps`, which is why delay-encoded algorithms run in
/// time `O(L + m)` rather than `O(n · L)` in practice.
#[derive(Clone, Copy, Debug, Default)]
pub struct EventEngine;

impl Engine for EventEngine {
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        self.run_observed(net, initial_spikes, config, &mut NullObserver)
    }
}

impl EventEngine {
    /// [`Engine::run`] with telemetry hooks; see
    /// [`DenseEngine::run_observed`](super::DenseEngine::run_observed).
    /// `on_step` fires only at event times (the engine skips quiet
    /// intervals), so the observer's series is sparse in `t` — exactly as
    /// the stats are.
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        let mut scratch = RunScratch::new();
        self.run_with_scratch_observed(net, initial_spikes, config, &mut scratch, obs)
    }

    /// [`Engine::run`] over recycled buffers; see
    /// [`DenseEngine::run_with_scratch`](super::DenseEngine::run_with_scratch).
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_scratch(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
    ) -> Result<RunResult, SnnError> {
        self.run_with_scratch_observed(net, initial_spikes, config, scratch, &mut NullObserver)
    }

    /// [`Self::run_with_scratch`] with telemetry hooks.
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_scratch_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        net.validate(true)?;
        let result = self.run_core(net, initial_spikes, config, scratch, obs)?;
        obs.on_finish(
            result.steps,
            result.stats.spike_events,
            result.stats.synaptic_deliveries,
            result.stats.neuron_updates,
        );
        Ok(result)
    }

    /// The hot path, minus network validation (the batch runner validates
    /// the shared network once per batch rather than once per run).
    pub(super) fn run_core<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        check_initial(net, initial_spikes)?;
        let mut rec = Recorder::new(net, config)?;
        let csr = net.csr();
        let params = net.params_slice();

        scratch.reset(net);
        let RunScratch {
            wheel,
            batch,
            fired,
            voltages,
            last_update,
            // The dense engines' synaptic accumulator doubles as the event
            // engine's per-step `accum`; both are all-zeros between steps.
            syn: accum,
            dirty,
            touched_ids: touched,
            ..
        } = scratch;

        fired.extend_from_slice(initial_spikes);
        fired.sort_unstable();
        fired.dedup();

        let mut stop_hit = rec.record_step(0, fired, &config.stop);
        let deliveries = route_spikes(csr, fired, 0, wheel, &mut rec);
        obs.on_step(
            0,
            StepRecord {
                spikes: fired.len() as u64,
                deliveries,
                updates: 0,
            },
        );
        if O::ENABLED {
            obs.on_scheduler(0, wheel.observe());
        }
        if stop_hit
            && !matches!(
                config.stop,
                StopCondition::MaxSteps | StopCondition::Quiescent
            )
        {
            return rec.finish(0, StopReason::ConditionMet, config);
        }

        let mut last_active: Time = 0;
        while let Some(t) = wheel.next_time() {
            if t > config.max_steps {
                break;
            }

            // Drain and accumulate every delivery arriving at step t. The
            // wheel yields deliveries in scheduling order — the same order
            // the dense engines accumulate in — so per-target sums are
            // bit-identical across engines.
            batch.clear();
            wheel.drain_at(t, batch);
            obs.on_spike_batch(t, batch.len() as u64);
            for &(id, w) in batch.iter() {
                let i = id.index();
                if !dirty[i] {
                    dirty[i] = true;
                    touched.push(id);
                }
                accum[i] += w;
            }
            touched.sort_unstable();
            let updates = touched.len() as u64;
            rec.add_updates(updates);

            // Update each touched neuron: lazy decay, add input, threshold.
            fired.clear();
            for &id in touched.iter() {
                let i = id.index();
                let p = &params[i];
                let dt = t - last_update[i];
                let v0 = voltages[i];
                // dt == 0 cannot happen (events batch per step), and
                // decay 0 keeps the voltage; both leave v0 untouched.
                let decayed = if dt == 0 || p.decay == 0.0 {
                    v0
                } else if p.decay == 1.0 {
                    p.v_reset
                } else {
                    p.v_reset + (v0 - p.v_reset) * (1.0 - p.decay).powi(dt as i32)
                };
                let v_hat = decayed + accum[i];
                if v_hat > p.v_threshold {
                    fired.push(id);
                    voltages[i] = p.v_reset;
                } else {
                    voltages[i] = v_hat;
                }
                last_update[i] = t;
                accum[i] = 0.0;
                dirty[i] = false;
            }
            touched.clear();
            last_active = t;

            stop_hit = rec.record_step(t, fired, &config.stop);
            let deliveries = route_spikes(csr, fired, t, wheel, &mut rec);
            obs.on_step(
                t,
                StepRecord {
                    spikes: fired.len() as u64,
                    deliveries,
                    updates,
                },
            );
            if O::ENABLED {
                obs.on_scheduler(t, wheel.observe());
            }

            if stop_hit
                && !matches!(
                    config.stop,
                    StopCondition::MaxSteps | StopCondition::Quiescent
                )
            {
                return rec.finish(t, StopReason::ConditionMet, config);
            }
        }

        if wheel.is_empty() {
            rec.finish(last_active, StopReason::Quiescent, config)
        } else {
            rec.finish(config.max_steps, StopReason::MaxStepsReached, config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    #[test]
    fn parallel_edges_count_one_touched_pair() {
        // Two same-delay edges into the same target must accumulate into
        // one neuron update, not two (the dirty bitmap dedups per step) —
        // including when the weights cancel to exactly zero.
        let mut net = Network::new();
        let src = net.add_neuron(LifParams::gate_at_least(1));
        let tgt = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(src, tgt, 2.0, 3).unwrap();
        net.connect(src, tgt, -2.0, 3).unwrap();
        let r = EventEngine
            .run(&net, &[src], &RunConfig::until_quiescent(10))
            .unwrap();
        assert_eq!(r.stats.neuron_updates, 1);
        assert_eq!(r.stats.synaptic_deliveries, 2);
        assert!(!r.fired(tgt));
    }

    #[test]
    fn matches_dense_on_delay_chain() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 3);
        net.connect(ids[0], ids[1], 1.0, 4).unwrap();
        net.connect(ids[1], ids[2], 1.0, 6).unwrap();
        let r = EventEngine
            .run(&net, &[ids[0]], &RunConfig::until_quiescent(100))
            .unwrap();
        assert_eq!(r.first_spike(ids[2]), Some(10));
        assert_eq!(r.steps, 10);
        assert_eq!(r.reason, StopReason::Quiescent);
    }

    #[test]
    fn rejects_spontaneous_neurons() {
        let mut net = Network::new();
        net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        assert!(matches!(
            EventEngine.run(&net, &[], &RunConfig::until_quiescent(10)),
            Err(SnnError::SpontaneousNeuron(_))
        ));
    }

    #[test]
    fn lazy_partial_decay_is_exact() {
        // tau = 0.5: 0.6 arrives at t=1, then 0.6 at t=4.
        // v(1)=0.6, decayed to t=4: 0.6 * 0.5^3 = 0.075; +0.6 = 0.675 < 0.9.
        // Then 0.6 at t=5: 0.675*0.5 + 0.6 = 0.9375 > 0.9 -> fires at 5.
        let mut net = Network::new();
        let src = net.add_neuron(LifParams::gate_at_least(1));
        let leaky = net.add_neuron(LifParams {
            v_reset: 0.0,
            v_threshold: 0.9,
            decay: 0.5,
        });
        net.connect(src, leaky, 0.6, 1).unwrap();
        net.connect(src, leaky, 0.6, 4).unwrap();
        net.connect(src, leaky, 0.6, 5).unwrap();
        let r = EventEngine
            .run(&net, &[src], &RunConfig::until_quiescent(10))
            .unwrap();
        assert_eq!(r.first_spike(leaky), Some(5));
    }

    #[test]
    fn latch_until_budget() {
        let mut net = Network::new();
        let m = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(m, m, 1.0, 1).unwrap();
        let r = EventEngine.run(&net, &[m], &RunConfig::fixed(15)).unwrap();
        assert_eq!(r.spike_counts[m.index()], 16);
        assert_eq!(r.reason, StopReason::MaxStepsReached);
        assert_eq!(r.steps, 15);
    }

    #[test]
    fn updates_only_touched_neurons() {
        // 1000 idle neurons, activity only along a 2-neuron path: event
        // engine must not pay for the idle ones.
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 50).unwrap();
        net.add_neurons(LifParams::gate_at_least(1), 1000);
        let r = EventEngine
            .run(&net, &[a], &RunConfig::until_quiescent(1000))
            .unwrap();
        assert_eq!(r.stats.neuron_updates, 1); // only b, once
        assert_eq!(r.first_spike(b), Some(50));
    }
}

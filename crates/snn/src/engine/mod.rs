//! Execution engines for spiking neural networks.
//!
//! Computation follows Definition 3: spikes are induced in a subset of the
//! input neurons at `t = 0`, the network evolves under LIF dynamics, and the
//! run ends when the configured [`StopCondition`] is met (canonically: the
//! terminal neuron fires at time `T`, at which point the output neurons'
//! firing state *at time `T`* may be read out).

mod batch;
mod bitplane;
mod dense;
mod event;
mod parallel;
mod stepper;
pub(crate) mod sync;
pub(crate) mod wheel;

pub use batch::{
    run_jobs, summarize, BatchRunner, EngineChoice, RunScratch, RunSpec,
    DEFAULT_PARTITION_MEMORY_BUDGET,
};
pub use bitplane::BitplaneEngine;
pub use dense::DenseEngine;
pub use event::EventEngine;
pub use parallel::{ParallelDenseEngine, DEFAULT_MIN_CHUNK};
pub use stepper::Stepper;

// Batch aggregation, re-exported alongside the runner that produces it.
pub use sgl_observe::BatchSummary;

// Observer protocol, re-exported so engine users don't need a separate
// `sgl_observe` import for the common case.
pub use sgl_observe::{NullObserver, RunObserver, SchedulerStats, StepRecord, TimeSeriesObserver};

use crate::error::SnnError;
use crate::network::Network;
use crate::raster::SpikeRaster;
use crate::types::{NeuronId, Time};

/// When a run should stop (checked after each completed time step, so all
/// spikes of the final step are visible in the result).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum StopCondition {
    /// Run until `max_steps` or until the network is quiescent (no spikes
    /// in flight), whichever comes first.
    #[default]
    Quiescent,
    /// Run exactly until the step budget is exhausted (or quiescence).
    MaxSteps,
    /// Stop when the network's designated terminal neuron first fires.
    Terminal,
    /// Stop once every listed neuron has fired at least once.
    AllOf(Vec<NeuronId>),
    /// Stop as soon as any listed neuron fires.
    AnyOf(Vec<NeuronId>),
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The configured stop condition was satisfied at `RunResult::steps`.
    ConditionMet,
    /// No spikes remained in flight (the network can never fire again
    /// without new input).
    Quiescent,
    /// The step budget ran out before the condition was met.
    MaxStepsReached,
}

/// Configuration of a single run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Hard upper bound on simulated time steps.
    pub max_steps: Time,
    /// Stop condition, checked at the end of each step.
    pub stop: StopCondition,
    /// Record the full spike raster (costs memory proportional to the
    /// number of spikes). First/last spike times and counts are always
    /// recorded.
    pub record_raster: bool,
    /// If true, hitting `max_steps` with an unmet non-`MaxSteps` condition
    /// is an error instead of a `MaxStepsReached` result.
    pub strict: bool,
}

impl RunConfig {
    /// Run until the terminal neuron fires, with the given step budget.
    #[must_use]
    pub fn until_terminal(max_steps: Time) -> Self {
        Self {
            max_steps,
            stop: StopCondition::Terminal,
            record_raster: false,
            strict: false,
        }
    }

    /// Run until quiescence (or the step budget).
    #[must_use]
    pub fn until_quiescent(max_steps: Time) -> Self {
        Self {
            max_steps,
            stop: StopCondition::Quiescent,
            record_raster: false,
            strict: false,
        }
    }

    /// Run for exactly `steps` time steps (unless quiescent earlier).
    #[must_use]
    pub fn fixed(steps: Time) -> Self {
        Self {
            max_steps: steps,
            stop: StopCondition::MaxSteps,
            record_raster: false,
            strict: false,
        }
    }

    /// Run until all the given neurons have fired.
    #[must_use]
    pub fn until_all(neurons: Vec<NeuronId>, max_steps: Time) -> Self {
        Self {
            max_steps,
            stop: StopCondition::AllOf(neurons),
            record_raster: false,
            strict: false,
        }
    }

    /// Enables full raster recording.
    #[must_use]
    pub fn with_raster(mut self) -> Self {
        self.record_raster = true;
        self
    }

    /// Makes an unmet stop condition at `max_steps` an error.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }
}

/// Engine work counters, the basis of the paper's resource comparisons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Number of spike events (the energy-relevant count: neuromorphic
    /// hardware consumes energy per spike, Table 3's pJ/spike column).
    pub spike_events: u64,
    /// Number of synaptic deliveries (spikes x fan-out actually routed).
    pub synaptic_deliveries: u64,
    /// Number of neuron state updates the engine performed. For the dense
    /// engine this is `neurons x steps`; for the event engine it is the
    /// number of (neuron, step) pairs that received input — the quantity
    /// event-driven hardware actually pays for.
    pub neuron_updates: u64,
}

/// Result of a run. `Eq` is exact — spike times, counts, raster, and work
/// counters are all integers — which is what lets the differential tests
/// demand bit-identical results across engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Termination time `T` (the execution time of Definition 3).
    pub steps: Time,
    /// Why the run ended.
    pub reason: StopReason,
    /// First firing time of each neuron, indexed by neuron id.
    pub first_spikes: Vec<Option<Time>>,
    /// Last firing time of each neuron (enables reading outputs "at `T`").
    pub last_spikes: Vec<Option<Time>>,
    /// Per-neuron spike counts.
    pub spike_counts: Vec<u32>,
    /// Full raster, when requested.
    pub raster: Option<SpikeRaster>,
    /// Work counters.
    pub stats: SimStats,
}

impl RunResult {
    /// First spike time of `id`, if it fired.
    #[must_use]
    pub fn first_spike(&self, id: NeuronId) -> Option<Time> {
        self.first_spikes[id.index()]
    }

    /// Whether `id` fired at least once.
    #[must_use]
    pub fn fired(&self, id: NeuronId) -> bool {
        self.first_spikes[id.index()].is_some()
    }

    /// Whether `id` fired at exactly the final step `T` — the Definition 3
    /// output readout.
    #[must_use]
    pub fn fired_at_end(&self, id: NeuronId) -> bool {
        self.last_spikes[id.index()] == Some(self.steps)
    }

    /// Output-neuron readout at time `T`: for each of the network's output
    /// neurons, whether it fired at `T` (in `Network::outputs()` order).
    #[must_use]
    pub fn output_bits(&self, net: &Network) -> Vec<bool> {
        net.outputs()
            .iter()
            .map(|&o| self.fired_at_end(o))
            .collect()
    }

    /// Total number of spikes.
    #[must_use]
    pub fn total_spikes(&self) -> u64 {
        self.stats.spike_events
    }
}

/// A spiking-network execution engine.
pub trait Engine {
    /// Runs `net` with spikes induced in `initial_spikes` at `t = 0`.
    ///
    /// # Errors
    /// Fails on invalid networks, unknown initial neurons, a `Terminal`
    /// stop condition without a terminal neuron, or (in strict mode) an
    /// exhausted step budget.
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError>;
}

/// Shared bookkeeping between engines: spike recording + stop tracking.
pub(crate) struct Recorder {
    first_spikes: Vec<Option<Time>>,
    last_spikes: Vec<Option<Time>>,
    spike_counts: Vec<u32>,
    raster: Option<SpikeRaster>,
    stats: SimStats,
    terminal: Option<NeuronId>,
    pending_targets: usize,
    satisfied: bool,
}

impl Recorder {
    pub(crate) fn new(net: &Network, config: &RunConfig) -> Result<Self, SnnError> {
        Self::with_shape(net.neuron_count(), net.terminal(), config)
    }

    /// [`Self::new`] from a network *shape* (neuron count + terminal)
    /// instead of a `Network`. The partitioned engine records against
    /// global ids, but at run time it only holds per-partition
    /// sub-networks — the original network's shape lives in the plan.
    pub(crate) fn with_shape(
        n: usize,
        net_terminal: Option<NeuronId>,
        config: &RunConfig,
    ) -> Result<Self, SnnError> {
        let terminal = match &config.stop {
            StopCondition::Terminal => Some(net_terminal.ok_or(SnnError::NoTerminal)?),
            _ => None,
        };
        let pending_targets = match &config.stop {
            StopCondition::AllOf(v) => {
                for &id in v {
                    if id.index() >= n {
                        return Err(SnnError::UnknownNeuron(id));
                    }
                }
                // Count *unique* targets: `record_step` decrements once per
                // neuron (on its first spike), so counting duplicates would
                // leave the condition permanently unsatisfiable and burn
                // the whole step budget.
                let mut uniq = v.clone();
                uniq.sort_unstable();
                uniq.dedup();
                uniq.len()
            }
            StopCondition::AnyOf(v) => {
                for &id in v {
                    if id.index() >= n {
                        return Err(SnnError::UnknownNeuron(id));
                    }
                }
                v.len()
            }
            _ => 0,
        };
        // An empty `AllOf` is vacuously satisfied: stop at the first check
        // (t = 0). An empty `AnyOf` stays unsatisfiable, as no listed
        // neuron can ever fire.
        let satisfied = pending_targets == 0 && matches!(&config.stop, StopCondition::AllOf(_));
        Ok(Self {
            first_spikes: vec![None; n],
            last_spikes: vec![None; n],
            spike_counts: vec![0; n],
            raster: config.record_raster.then(SpikeRaster::new),
            stats: SimStats::default(),
            terminal,
            pending_targets,
            satisfied,
        })
    }

    /// Records one time step's spikes (`fired` must be sorted by id) and
    /// returns whether the stop condition became satisfied in this step.
    pub(crate) fn record_step(
        &mut self,
        t: Time,
        fired: &[NeuronId],
        stop: &StopCondition,
    ) -> bool {
        self.stats.spike_events += fired.len() as u64;
        if let Some(r) = &mut self.raster {
            r.push_step(t, fired);
        }
        for &id in fired {
            let i = id.index();
            if self.first_spikes[i].is_none() {
                self.first_spikes[i] = Some(t);
                match stop {
                    StopCondition::AllOf(v) if v.contains(&id) => {
                        self.pending_targets -= 1;
                        if self.pending_targets == 0 {
                            self.satisfied = true;
                        }
                    }
                    StopCondition::AnyOf(v) if v.contains(&id) => {
                        self.satisfied = true;
                    }
                    _ => {}
                }
            }
            self.last_spikes[i] = Some(t);
            self.spike_counts[i] += 1;
            if self.terminal == Some(id) {
                self.satisfied = true;
            }
        }
        self.satisfied
    }

    pub(crate) fn add_deliveries(&mut self, n: u64) {
        self.stats.synaptic_deliveries += n;
    }

    pub(crate) fn add_updates(&mut self, n: u64) {
        self.stats.neuron_updates += n;
    }

    pub(crate) fn finish(
        self,
        steps: Time,
        reason: StopReason,
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        if config.strict
            && reason == StopReason::MaxStepsReached
            && config.stop != StopCondition::MaxSteps
        {
            return Err(SnnError::StepLimitExceeded {
                max_steps: config.max_steps,
            });
        }
        Ok(RunResult {
            steps,
            reason,
            first_spikes: self.first_spikes,
            last_spikes: self.last_spikes,
            spike_counts: self.spike_counts,
            raster: self.raster,
            stats: self.stats,
        })
    }
}

pub(crate) fn check_initial(net: &Network, initial: &[NeuronId]) -> Result<(), SnnError> {
    for &id in initial {
        if id.index() >= net.neuron_count() {
            return Err(SnnError::UnknownNeuron(id));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    #[test]
    fn run_config_builders() {
        let c = RunConfig::until_terminal(10).with_raster().strict();
        assert_eq!(c.max_steps, 10);
        assert_eq!(c.stop, StopCondition::Terminal);
        assert!(c.record_raster);
        assert!(c.strict);
        assert_eq!(RunConfig::fixed(5).stop, StopCondition::MaxSteps);
        assert_eq!(RunConfig::until_quiescent(5).stop, StopCondition::Quiescent);
    }

    #[test]
    fn recorder_terminal_detection() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.set_terminal(b);
        let cfg = RunConfig::until_terminal(10);
        let mut rec = Recorder::new(&net, &cfg).unwrap();
        assert!(!rec.record_step(1, &[a], &cfg.stop));
        assert!(rec.record_step(2, &[b], &cfg.stop));
    }

    #[test]
    fn recorder_all_of() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        let cfg = RunConfig::until_all(vec![a, b], 10);
        let mut rec = Recorder::new(&net, &cfg).unwrap();
        assert!(!rec.record_step(1, &[a], &cfg.stop));
        assert!(!rec.record_step(2, &[a], &cfg.stop)); // repeat spike doesn't double count
        assert!(rec.record_step(3, &[b], &cfg.stop));
    }

    #[test]
    fn recorder_all_of_with_duplicate_ids() {
        // Regression: duplicated ids used to inflate `pending_targets`
        // beyond the number of distinct neurons, making the condition
        // unsatisfiable (runs burned to max_steps).
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        let cfg = RunConfig::until_all(vec![a, a, b, a], 10);
        let mut rec = Recorder::new(&net, &cfg).unwrap();
        assert!(!rec.record_step(1, &[a], &cfg.stop));
        assert!(rec.record_step(2, &[b], &cfg.stop));
    }

    #[test]
    fn recorder_empty_all_of_is_vacuously_satisfied() {
        let mut net = Network::new();
        net.add_neuron(LifParams::default());
        let cfg = RunConfig::until_all(vec![], 10);
        let mut rec = Recorder::new(&net, &cfg).unwrap();
        assert!(rec.record_step(0, &[], &cfg.stop));
    }

    #[test]
    fn recorder_rejects_missing_terminal() {
        let net = Network::new();
        let cfg = RunConfig::until_terminal(10);
        assert!(matches!(
            Recorder::new(&net, &cfg),
            Err(SnnError::NoTerminal)
        ));
    }

    #[test]
    fn strict_mode_errors_on_budget() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        net.set_terminal(a);
        let cfg = RunConfig::until_terminal(5).strict();
        let rec = Recorder::new(&net, &cfg).unwrap();
        assert!(rec.finish(5, StopReason::MaxStepsReached, &cfg).is_err());
    }
}

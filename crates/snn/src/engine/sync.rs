//! Synchronisation primitives shared by the thread-parallel engines.
//!
//! [`SpinBarrier`] started life inside the parallel dense engine; the
//! threaded partitioned driver meets at the same barrier design, so it
//! lives here now. See the module docs of [`super::parallel`] for the
//! measurements that motivated the tiered wait.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Spins before yielding in [`SpinBarrier::wait`]. Parallel-engine steps
/// over `min_chunk`-sized chunks complete in well under this many spins;
/// the yield path only triggers when a peer is descheduled.
const SPIN_LIMIT: u32 = 1 << 10;

/// Yield rounds after the spin budget before parking on the condvar.
/// Yielding is enough when peers are merely timesliced out; parking only
/// happens when the system is genuinely oversubscribed for a while.
const YIELD_LIMIT: u32 = 64;

/// Sense-reversing barrier with a tiered wait: spin on the generation
/// counter (with [`std::hint::spin_loop`]) for [`SPIN_LIMIT`] rounds, then
/// [`std::thread::yield_now`] for [`YIELD_LIMIT`] rounds, then park on a
/// condvar. The common microsecond-scale step resolves in the spin tier
/// without entering the kernel; the park tier keeps the barrier from
/// burning scheduler quanta when there are fewer cores than parties (a
/// waiter's spin cycles are then stolen from the very peer it waits for —
/// spinning is skipped outright in that case).
pub(crate) struct SpinBarrier {
    parties: usize,
    /// Per-instance spin budget: [`SPIN_LIMIT`], or 0 when the machine
    /// cannot run all parties concurrently anyway.
    spin: u32,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    lock: Mutex<()>,
    parked: Condvar,
}

impl SpinBarrier {
    pub(crate) fn new(parties: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            parties,
            spin: if cores >= parties { SPIN_LIMIT } else { 0 },
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            lock: Mutex::new(()),
            parked: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arriver: reset the count, then open the next generation.
            // The release store on `generation` publishes the reset (and
            // all pre-barrier writes) to every waiter's acquire load.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            // Taking (and dropping) the lock between the generation bump
            // and the notify closes the park race: a waiter that saw the
            // old generation either re-checks it under this lock before
            // parking, or is already parked and receives the notify.
            drop(self.lock.lock().expect("barrier lock poisoned"));
            self.parked.notify_all();
        } else {
            let mut rounds = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if rounds < self.spin {
                    std::hint::spin_loop();
                } else if rounds < self.spin + YIELD_LIMIT {
                    std::thread::yield_now();
                } else {
                    let mut guard = self.lock.lock().expect("barrier lock poisoned");
                    while self.generation.load(Ordering::Acquire) == gen {
                        guard = self.parked.wait(guard).expect("barrier lock poisoned");
                    }
                    break;
                }
                rounds += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronises_generations() {
        let barrier = SpinBarrier::new(3);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for round in 0..50u64 {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        // Between two waits, every party has bumped.
                        assert!(counter.load(Ordering::Acquire) >= (round + 1) * 3);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), 150);
    }
}

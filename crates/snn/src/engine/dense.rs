//! Literal time-stepped engine: every neuron is updated every step.

use sgl_observe::{NullObserver, RunObserver, StepRecord};

use super::batch::RunScratch;
use super::wheel::TimeWheel;
use super::{check_initial, Engine, Recorder, RunConfig, RunResult, StopCondition, StopReason};
use crate::error::SnnError;
use crate::network::{CsrTopology, Network};
use crate::types::{NeuronId, Time};

/// The reference engine. Implements Eqs. (1)–(3) verbatim: at every time
/// step the voltage of *each* neuron is decayed, synaptic input added, and
/// the threshold compared. Work is `Θ(neurons)` per step plus spike
/// routing, which is exactly the per-step cost a fully synchronous
/// neuromorphic core pays.
///
/// Use this engine for validation and for small circuit-level runs; use
/// [`super::EventEngine`] for large delay-encoded graph computations.
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseEngine;

impl Engine for DenseEngine {
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        self.run_observed(net, initial_spikes, config, &mut NullObserver)
    }
}

impl DenseEngine {
    /// [`Engine::run`] with telemetry hooks. The observer type
    /// monomorphizes: with [`NullObserver`] every hook call and every
    /// `O::ENABLED` gate compiles away, leaving the unobserved hot path
    /// (the criterion smoke benches hold this to within 5%).
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        let mut scratch = RunScratch::new();
        self.run_with_scratch_observed(net, initial_spikes, config, &mut scratch, obs)
    }

    /// [`Engine::run`] over recycled buffers: all transient run state
    /// (time wheel, voltages, synaptic accumulators, spike lists) comes
    /// from `scratch`, which is reset — not reallocated — on entry.
    /// Results are bit-identical to a fresh [`Engine::run`]; the batch
    /// bit-identity proptests enforce this.
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_scratch(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
    ) -> Result<RunResult, SnnError> {
        self.run_with_scratch_observed(net, initial_spikes, config, scratch, &mut NullObserver)
    }

    /// [`Self::run_with_scratch`] with telemetry hooks.
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_scratch_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        net.validate(false)?;
        let result = self.run_core(net, initial_spikes, config, scratch, obs)?;
        obs.on_finish(
            result.steps,
            result.stats.spike_events,
            result.stats.synaptic_deliveries,
            result.stats.neuron_updates,
        );
        Ok(result)
    }

    /// The hot path, minus network validation (the batch runner validates
    /// the shared network once per batch rather than once per run).
    pub(super) fn run_core<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        scratch: &mut RunScratch,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        check_initial(net, initial_spikes)?;
        let mut rec = Recorder::new(net, config)?;
        let n = net.neuron_count();
        let csr = net.csr();
        let params = net.params_slice();

        // Pending synaptic deliveries live in a time wheel sized to the
        // largest delay: O(1) scheduling/draining with slot capacity
        // recycled across wraps, so the steady state never allocates.
        // All of this state comes from the scratch: reset restores the
        // exact observable state a fresh construction would have, so
        // recycled runs stay bit-identical.
        scratch.reset(net);
        let RunScratch {
            wheel,
            batch,
            fired,
            voltages,
            syn,
            touched_idx: touched,
            ..
        } = scratch;

        fired.extend_from_slice(initial_spikes);
        fired.sort_unstable();
        fired.dedup();

        // t = 0: induced input spikes.
        let mut stop_hit = rec.record_step(0, fired, &config.stop);
        let deliveries = route_spikes(csr, fired, 0, wheel, &mut rec);
        obs.on_step(
            0,
            StepRecord {
                spikes: fired.len() as u64,
                deliveries,
                updates: 0,
            },
        );
        if O::ENABLED {
            obs.on_scheduler(0, wheel.observe());
        }
        if stop_hit
            && !matches!(
                config.stop,
                StopCondition::MaxSteps | StopCondition::Quiescent
            )
        {
            return rec.finish(0, StopReason::ConditionMet, config);
        }
        // A neuron is "armed" if it would fire next step with zero synaptic
        // input (possible only when v_reset > v_threshold, i.e. spontaneous
        // neurons, which the dense engine supports). Quiescence requires no
        // pending deliveries and no armed neurons.
        let spontaneous = params.iter().any(|p| !p.is_input_driven());
        if wheel.is_empty() && !spontaneous {
            return rec.finish(0, StopReason::Quiescent, config);
        }

        for t in 1..=config.max_steps {
            batch.clear();
            wheel.drain_at(t, batch);
            obs.on_spike_batch(t, batch.len() as u64);
            for &(id, w) in batch.iter() {
                let i = id.index();
                if syn[i] == 0.0 {
                    touched.push(i);
                }
                syn[i] += w;
            }

            fired.clear();
            let mut armed = false;
            for i in 0..n {
                let p = &params[i];
                let v = voltages[i];
                // Eq. (1): decay toward reset, then add synaptic input.
                let v_hat = v - (v - p.v_reset) * p.decay + syn[i];
                // Eq. (2)/(3): threshold comparison and reset-on-fire.
                if v_hat > p.v_threshold {
                    fired.push(NeuronId(i as u32));
                    voltages[i] = p.v_reset;
                } else {
                    voltages[i] = v_hat;
                }
                // Would this neuron fire next step with no input?
                let v_next = voltages[i] - (voltages[i] - p.v_reset) * p.decay;
                armed |= v_next > p.v_threshold;
            }
            rec.add_updates(n as u64);
            for &i in touched.iter() {
                syn[i] = 0.0;
            }
            touched.clear();

            stop_hit = rec.record_step(t, fired, &config.stop);
            let deliveries = route_spikes(csr, fired, t, wheel, &mut rec);
            obs.on_step(
                t,
                StepRecord {
                    spikes: fired.len() as u64,
                    deliveries,
                    updates: n as u64,
                },
            );
            if O::ENABLED {
                obs.on_scheduler(t, wheel.observe());
            }

            if stop_hit
                && !matches!(
                    config.stop,
                    StopCondition::MaxSteps | StopCondition::Quiescent
                )
            {
                return rec.finish(t, StopReason::ConditionMet, config);
            }
            if wheel.is_empty() && !armed {
                // No spikes in flight and no neuron can fire without input:
                // voltages only decay toward reset (<= threshold for
                // input-driven neurons), so the network can never fire
                // again. The spike time of the last activity is `T`.
                return rec.finish(t, StopReason::Quiescent, config);
            }
        }

        rec.finish(config.max_steps, StopReason::MaxStepsReached, config)
    }
}

/// Schedules the fan-out of every fired neuron, in (sorted firing id) ×
/// (CSR synapse order) — the shared delivery order all engines follow.
/// Returns the number of deliveries routed, so callers can report the
/// step's cost to an observer without re-walking the fan-out.
pub(super) fn route_spikes(
    csr: &CsrTopology,
    fired: &[NeuronId],
    t: Time,
    wheel: &mut TimeWheel,
    rec: &mut Recorder,
) -> u64 {
    let mut deliveries = 0u64;
    for &id in fired {
        for s in csr.out(id.index()) {
            wheel.schedule(t + Time::from(s.delay), s.target, s.weight);
            deliveries += 1;
        }
    }
    rec.add_deliveries(deliveries);
    deliveries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    fn run(net: &Network, init: &[NeuronId], cfg: RunConfig) -> RunResult {
        DenseEngine.run(net, init, &cfg).unwrap()
    }

    #[test]
    fn single_synapse_delay_is_exact() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 7).unwrap();
        let r = run(&net, &[a], RunConfig::until_quiescent(100));
        assert_eq!(r.first_spike(a), Some(0));
        assert_eq!(r.first_spike(b), Some(7));
        assert_eq!(r.steps, 7);
        assert_eq!(r.reason, StopReason::Quiescent);
    }

    #[test]
    fn chain_delays_add() {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 4);
        net.connect(ids[0], ids[1], 1.0, 2).unwrap();
        net.connect(ids[1], ids[2], 1.0, 3).unwrap();
        net.connect(ids[2], ids[3], 1.0, 5).unwrap();
        net.set_terminal(ids[3]);
        let r = run(&net, &[ids[0]], RunConfig::until_terminal(100));
        assert_eq!(r.first_spike(ids[3]), Some(10));
        assert_eq!(r.reason, StopReason::ConditionMet);
    }

    #[test]
    fn and_gate_requires_coincidence() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        let and = net.add_neuron(LifParams::gate_at_least(2));
        net.connect(a, and, 1.0, 1).unwrap();
        net.connect(b, and, 1.0, 1).unwrap();
        // Both fire at t=0 -> coincident arrival at t=1 -> AND fires.
        let r = run(&net, &[a, b], RunConfig::until_quiescent(10));
        assert_eq!(r.first_spike(and), Some(1));
        // Only one input -> no fire. With tau=1 the gate holds no residue.
        let r = run(&net, &[a], RunConfig::until_quiescent(10));
        assert_eq!(r.first_spike(and), None);
    }

    #[test]
    fn gate_decay_prevents_temporal_summation() {
        // Two unit inputs arriving at different times must NOT fire a
        // 2-threshold gate (tau = 1 drains between steps).
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        let and = net.add_neuron(LifParams::gate_at_least(2));
        net.connect(a, and, 1.0, 1).unwrap();
        net.connect(b, and, 1.0, 2).unwrap(); // staggered arrival
        let r = run(&net, &[a, b], RunConfig::until_quiescent(10));
        assert_eq!(r.first_spike(and), None);
    }

    #[test]
    fn integrator_sums_across_time() {
        // An integrator (tau = 0) does accumulate staggered inputs.
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        let acc = net.add_neuron(LifParams::integrator(1.5));
        net.connect(a, acc, 1.0, 1).unwrap();
        net.connect(b, acc, 1.0, 3).unwrap();
        let r = run(&net, &[a, b], RunConfig::until_quiescent(10));
        assert_eq!(r.first_spike(acc), Some(3));
    }

    #[test]
    fn inhibition_blocks_firing() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let tgt = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, tgt, 1.0, 1).unwrap();
        net.connect(a, tgt, -1.0, 1).unwrap(); // simultaneous inhibition
        let r = run(&net, &[a], RunConfig::until_quiescent(10));
        assert_eq!(r.first_spike(tgt), None);
    }

    #[test]
    fn self_loop_latch_fires_forever() {
        let mut net = Network::new();
        let m = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(m, m, 1.0, 1).unwrap();
        let r = run(&net, &[m], RunConfig::fixed(20).with_raster());
        assert_eq!(r.spike_counts[m.index()], 21); // t = 0..=20
        assert_eq!(r.reason, StopReason::MaxStepsReached);
    }

    #[test]
    fn partial_decay_halves_voltage() {
        // tau = 0.5, threshold 0.9: single 0.6 input decays 0.6 -> 0.3 ->
        // 0.15...; a second 0.6 input two steps later reaches 0.75 < 0.9,
        // but one step later reaches 0.9 + ... Let's verify the exact sum.
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        let leaky = net.add_neuron(LifParams {
            v_reset: 0.0,
            v_threshold: 0.9,
            decay: 0.5,
        });
        net.connect(a, leaky, 0.6, 1).unwrap();
        net.connect(b, leaky, 0.6, 2).unwrap();
        // Arrivals at t=1 (0.6) and t=2 (0.6): v(2) = 0.3 + 0.6 = 0.9, not
        // strictly greater than 0.9 -> no fire at t=2; decays after.
        let r = run(&net, &[a, b], RunConfig::until_quiescent(10));
        assert_eq!(r.first_spike(leaky), None);

        // Same but arrivals coincide: 1.2 > 0.9 -> fires.
        let mut net2 = Network::new();
        let a2 = net2.add_neuron(LifParams::gate_at_least(1));
        let leaky2 = net2.add_neuron(LifParams {
            v_reset: 0.0,
            v_threshold: 0.9,
            decay: 0.5,
        });
        net2.connect(a2, leaky2, 0.6, 1).unwrap();
        net2.connect(a2, leaky2, 0.6, 1).unwrap();
        let r2 = run(&net2, &[a2], RunConfig::until_quiescent(10));
        assert_eq!(r2.first_spike(leaky2), Some(1));
    }

    #[test]
    fn terminal_at_time_zero() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        net.set_terminal(a);
        let r = run(&net, &[a], RunConfig::until_terminal(10));
        assert_eq!(r.steps, 0);
        assert_eq!(r.reason, StopReason::ConditionMet);
    }

    #[test]
    fn strict_budget_exhaustion_errors() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::default());
        let b = net.add_neuron(LifParams::default());
        net.connect(a, a, 1.0, 1).unwrap(); // a latches forever, b never fires
        net.set_terminal(b);
        let err = DenseEngine.run(&net, &[a], &RunConfig::until_terminal(5).strict());
        assert!(matches!(err, Err(SnnError::StepLimitExceeded { .. })));
    }

    #[test]
    fn stats_count_spikes_and_deliveries() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        let c = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 1).unwrap();
        net.connect(a, c, 1.0, 1).unwrap();
        let r = run(&net, &[a], RunConfig::until_quiescent(10));
        assert_eq!(r.stats.spike_events, 3); // a, b, c
        assert_eq!(r.stats.synaptic_deliveries, 2);
    }

    #[test]
    fn output_readout_at_termination() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let o1 = net.add_neuron(LifParams::gate_at_least(1));
        let o2 = net.add_neuron(LifParams::gate_at_least(1));
        let term = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, o1, 1.0, 2).unwrap();
        net.connect(a, term, 1.0, 2).unwrap();
        net.mark_output(o1);
        net.mark_output(o2);
        net.set_terminal(term);
        let r = run(&net, &[a], RunConfig::until_terminal(10));
        assert_eq!(r.output_bits(&net), vec![true, false]);
    }
}

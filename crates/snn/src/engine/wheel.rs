//! Time-wheel (calendar queue) for pending synaptic deliveries.
//!
//! All engines schedule deliveries `delay` steps ahead and drain them in
//! time order. The previous implementations paid per-step `HashMap`
//! rehashing (dense engines) or per-delivery `BinaryHeap` churn (event
//! engine); the wheel makes both O(1): a delivery lands in
//! `slots[time % slots.len()]`, slots are drained in place (capacity is
//! recycled, so steady-state runs stop allocating), and deliveries beyond
//! the wheel horizon spill into an ordered overflow map.
//!
//! Determinism invariant: within one time step, deliveries drain in
//! exactly the order they were scheduled. Engines schedule in (sorted
//! firing id) × (CSR synapse order), so every engine accumulates synaptic
//! input into a given target in the same order — which keeps floating
//! point sums, and therefore entire `RunResult`s, bit-identical across
//! engines.

use std::collections::BTreeMap;

use sgl_observe::SchedulerStats;

use crate::types::{NeuronId, Time};

/// One pending synaptic delivery: `weight` arriving at `target`.
pub(crate) type Delivery = (NeuronId, f64);

/// Wheel slots beyond this are not allocated up front; longer delays go to
/// the overflow map. Bounds memory to O(cap) even for networks whose
/// delay-encoded edges are enormous.
///
/// Shared with [`crate::network::BitplaneTopology`]: the bit-plane engine
/// splits synapses into in-horizon and overflow sets with the *same*
/// boundary, so both engines classify — and therefore order — every
/// delivery identically.
pub(crate) const HORIZON_CAP: usize = 4096;

/// A calendar queue over discrete time, sized to the network's maximum
/// synaptic delay (capped; see [`HORIZON_CAP`]).
#[derive(Clone, Debug)]
pub(crate) struct TimeWheel {
    /// `slots[t % slots.len()]` holds deliveries for time `t` whenever
    /// `now < t <= now + slots.len()`.
    slots: Vec<Vec<Delivery>>,
    /// Deliveries scheduled beyond the wheel horizon, keyed by time.
    overflow: BTreeMap<Time, Vec<Delivery>>,
    /// All times `<= now` have been drained.
    now: Time,
    /// Total deliveries currently scheduled (wheel + overflow).
    in_flight: usize,
    /// Number of non-empty wheel slots, to short-circuit scans.
    occupied: usize,
    /// No occupied wheel slot lies strictly before this time; lets
    /// [`Self::next_time`] resume scanning where the last scan stopped
    /// instead of re-walking from `now + 1`.
    scan_from: Time,
    /// Cumulative count of deliveries that missed the wheel horizon and
    /// took the ordered-map slow path. Telemetry only; never read by the
    /// scheduling logic.
    overflow_hits: u64,
}

impl Default for TimeWheel {
    /// A minimal one-slot wheel; [`Self::reset`] re-sizes it on first use
    /// (this is what an empty `RunScratch` starts from).
    fn default() -> Self {
        Self::new(1)
    }
}

impl TimeWheel {
    /// A wheel able to hold delays up to `max_delay` without overflow.
    pub(crate) fn new(max_delay: u32) -> Self {
        let len = (max_delay as usize).clamp(1, HORIZON_CAP);
        Self {
            slots: vec![Vec::new(); len],
            overflow: BTreeMap::new(),
            now: 0,
            in_flight: 0,
            occupied: 0,
            scan_from: 1,
            overflow_hits: 0,
        }
    }

    /// Returns the wheel to its freshly-constructed state for a network
    /// whose maximum delay is `max_delay`, keeping slot capacity.
    ///
    /// This is the batch-runtime recycling path: slots are cleared (not
    /// reallocated), the overflow map and its cumulative hit counter are
    /// emptied, and the clock/scan cursors rewind, so a recycled wheel is
    /// observationally identical to `TimeWheel::new(max_delay)` — which is
    /// what keeps re-runs over recycled scratch bit-identical to fresh
    /// runs. Resizing only trims or appends empty slots; retained slots
    /// keep their capacity, so steady-state batches stop allocating.
    pub(crate) fn reset(&mut self, max_delay: u32) {
        let len = (max_delay as usize).clamp(1, HORIZON_CAP);
        self.slots.truncate(len);
        for slot in &mut self.slots {
            slot.clear();
        }
        self.slots.resize(len, Vec::new());
        self.overflow.clear();
        self.now = 0;
        self.in_flight = 0;
        self.occupied = 0;
        self.scan_from = 1;
        self.overflow_hits = 0;
    }

    /// True when nothing is scheduled — the "no spikes in flight" half of
    /// the quiescence test.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    /// Schedules a delivery at absolute time `at`.
    ///
    /// `at` must be in the future (`at > now`); engines guarantee this
    /// because synapse delays are >= 1.
    #[inline]
    pub(crate) fn schedule(&mut self, at: Time, target: NeuronId, weight: f64) {
        debug_assert!(at > self.now, "delivery scheduled into the past");
        self.in_flight += 1;
        let len = self.slots.len() as Time;
        if at - self.now <= len {
            let slot = &mut self.slots[(at % len) as usize];
            if slot.is_empty() {
                self.occupied += 1;
            }
            slot.push((target, weight));
            self.scan_from = self.scan_from.min(at);
        } else {
            self.overflow_hits += 1;
            self.overflow.entry(at).or_default().push((target, weight));
        }
    }

    /// Occupancy snapshot for [`sgl_observe::RunObserver::on_scheduler`].
    /// Engines only call this when the observer is enabled, so unobserved
    /// runs never pay for it.
    pub(crate) fn observe(&self) -> SchedulerStats {
        SchedulerStats {
            in_flight: self.in_flight as u64,
            occupied_slots: self.occupied as u64,
            overflow_entries: self.overflow.len() as u64,
            overflow_hits: self.overflow_hits,
        }
    }

    /// Advances to time `t` and appends every delivery due at `t` to
    /// `out`, in scheduling order. Slot capacity is retained for reuse.
    ///
    /// Engines must visit times in non-decreasing order; times may be
    /// skipped (the event engine jumps quiet intervals), in which case any
    /// slots for the skipped times must be empty — guaranteed when `t`
    /// comes from [`Self::next_time`].
    pub(crate) fn drain_at(&mut self, t: Time, out: &mut Vec<Delivery>) {
        debug_assert!(t >= self.now, "wheel rewound");
        self.now = t;
        self.scan_from = self.scan_from.max(t + 1);
        let len = self.slots.len() as Time;
        let slot = &mut self.slots[(t % len) as usize];
        if !slot.is_empty() {
            self.occupied -= 1;
            self.in_flight -= slot.len();
            out.append(slot);
        }
        // Overflow entries migrate straight to the drain when their time
        // comes; anything still beyond the horizon stays put.
        while let Some(entry) = self.overflow.first_entry() {
            if *entry.key() != t {
                break;
            }
            let batch = entry.remove();
            self.in_flight -= batch.len();
            out.extend(batch);
        }
    }

    /// Earliest time after `now` with a scheduled delivery, if any — the
    /// event engine's next step. Scans resume from the `scan_from` cursor
    /// (which only moves backwards when a genuinely earlier delivery is
    /// scheduled), so the cost is amortized O(1) per time unit advanced.
    pub(crate) fn next_time(&mut self) -> Option<Time> {
        let from_overflow = self.overflow.keys().next().copied();
        if self.occupied == 0 {
            return from_overflow;
        }
        let len = self.slots.len() as Time;
        let start = self.scan_from.max(self.now + 1);
        let from_wheel =
            (start..=self.now + len).find(|t| !self.slots[(t % len) as usize].is_empty());
        if let Some(w) = from_wheel {
            // Everything before `w` is known empty; remember that.
            self.scan_from = w;
        }
        match (from_wheel, from_overflow) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimeWheel, t: Time) -> Vec<Delivery> {
        let mut out = Vec::new();
        wheel.drain_at(t, &mut out);
        out
    }

    #[test]
    fn delivers_at_the_scheduled_time() {
        let mut w = TimeWheel::new(8);
        w.schedule(3, NeuronId(1), 1.5);
        w.schedule(5, NeuronId(2), -2.0);
        assert_eq!(w.next_time(), Some(3));
        assert!(drain(&mut w, 1).is_empty());
        assert_eq!(drain(&mut w, 3), vec![(NeuronId(1), 1.5)]);
        assert_eq!(w.next_time(), Some(5));
        assert_eq!(drain(&mut w, 5), vec![(NeuronId(2), -2.0)]);
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
    }

    #[test]
    fn preserves_scheduling_order_within_a_step() {
        let mut w = TimeWheel::new(4);
        for k in 0..10 {
            w.schedule(2, NeuronId(k % 3), f64::from(k));
        }
        let got = drain(&mut w, 2);
        let weights: Vec<f64> = got.iter().map(|&(_, x)| x).collect();
        assert_eq!(weights, (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn wraps_around_and_recycles_slots() {
        let mut w = TimeWheel::new(3);
        for round in 0..50u64 {
            let t = round + 1;
            w.schedule(t + 2, NeuronId(0), 1.0);
            let due = drain(&mut w, t);
            if t > 2 {
                assert_eq!(due.len(), 1, "t = {t}");
            }
        }
    }

    #[test]
    fn far_future_goes_to_overflow_and_comes_back() {
        let mut w = TimeWheel::new(2);
        w.schedule(1_000_000, NeuronId(7), 3.25);
        w.schedule(1, NeuronId(1), 1.0);
        assert_eq!(w.next_time(), Some(1));
        assert_eq!(drain(&mut w, 1).len(), 1);
        assert_eq!(w.next_time(), Some(1_000_000));
        assert!(!w.is_empty());
        assert_eq!(drain(&mut w, 1_000_000), vec![(NeuronId(7), 3.25)]);
        assert!(w.is_empty());
    }

    #[test]
    fn horizon_cap_bounds_slot_count() {
        let w = TimeWheel::new(u32::MAX);
        assert_eq!(w.slots.len(), HORIZON_CAP);
    }

    #[test]
    fn zero_max_delay_still_valid() {
        // Edgeless networks report max_delay 0; the wheel must still work
        // for engines that never schedule anything.
        let mut w = TimeWheel::new(0);
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
    }

    #[test]
    fn observe_tracks_occupancy_and_overflow() {
        let mut w = TimeWheel::new(2);
        w.schedule(1, NeuronId(0), 1.0);
        w.schedule(2, NeuronId(1), 1.0);
        w.schedule(1_000, NeuronId(2), 1.0); // beyond horizon
        let s = w.observe();
        assert_eq!(s.in_flight, 3);
        assert_eq!(s.occupied_slots, 2);
        assert_eq!(s.overflow_entries, 1);
        assert_eq!(s.overflow_hits, 1);
        drain(&mut w, 1);
        drain(&mut w, 2);
        drain(&mut w, 1_000);
        let s = w.observe();
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.occupied_slots, 0);
        assert_eq!(s.overflow_entries, 0);
        // Hits are cumulative: the slow path was taken once this run.
        assert_eq!(s.overflow_hits, 1);
    }

    #[test]
    fn reset_restores_pristine_state_and_resizes() {
        let mut w = TimeWheel::new(4);
        w.schedule(2, NeuronId(0), 1.0);
        w.schedule(10_000, NeuronId(1), 2.0); // overflow path
        drain(&mut w, 1); // advance the clock without clearing everything
        assert!(!w.is_empty());
        w.reset(7);
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
        let s = w.observe();
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.occupied_slots, 0);
        assert_eq!(s.overflow_entries, 0);
        assert_eq!(s.overflow_hits, 0);
        assert_eq!(w.slots.len(), 7);
        // A recycled wheel behaves exactly like a fresh one.
        w.schedule(3, NeuronId(2), 4.0);
        assert_eq!(w.next_time(), Some(3));
        assert_eq!(drain(&mut w, 3), vec![(NeuronId(2), 4.0)]);
    }

    #[test]
    fn skipping_quiet_intervals_is_safe() {
        let mut w = TimeWheel::new(16);
        w.schedule(3, NeuronId(0), 1.0);
        w.schedule(14, NeuronId(1), 2.0);
        assert_eq!(drain(&mut w, 3), vec![(NeuronId(0), 1.0)]);
        assert_eq!(w.next_time(), Some(14));
        assert_eq!(drain(&mut w, 14), vec![(NeuronId(1), 2.0)]);
    }
}

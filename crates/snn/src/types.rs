//! Fundamental identifier and time types shared across the simulator.

use std::fmt;

/// Discrete simulation time, in time steps (`t ∈ ℕ`).
///
/// Computation starts with input spikes induced at `t = 0`; the earliest a
/// downstream neuron can fire is `t = 1` (through a delay-1 synapse).
pub type Time = u64;

/// Identifier of a neuron within a [`crate::Network`].
///
/// Neuron ids are dense indices assigned in creation order, so they double
/// as vector indices in the engines. A `u32` supports networks of up to
/// ~4.3 billion neurons — comfortably beyond the 100M-neuron systems the
/// paper surveys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NeuronId(pub u32);

impl NeuronId {
    /// The neuron's dense index, usable to index per-neuron vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NeuronId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NeuronId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NeuronId> for usize {
    fn from(id: NeuronId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_id_roundtrip_and_format() {
        let id = NeuronId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn neuron_id_ordering_follows_index() {
        assert!(NeuronId(1) < NeuronId(2));
        assert_eq!(NeuronId(7), NeuronId(7));
    }
}

//! Bulk network compilation: stage edges flat, validate in one pass,
//! counting-sort straight into CSR.
//!
//! The incremental path ([`Network::connect`]) is right for single-edge
//! edits: it validates eagerly and keeps a per-neuron adjacency list. For
//! *mass construction* — compiling a whole graph into a Definition-3
//! network — it pays for that flexibility three times over: one `Vec`
//! allocation per neuron, one [`OnceLock`](std::sync::OnceLock)
//! invalidation per edge, and a full O(m) copy into CSR form on first
//! simulation, leaving the network holding ~2× its synapse memory.
//!
//! [`NetworkBuilder`] removes all three costs. Edges are staged in one
//! flat buffer, validated in a single pass (same [`SnnError`]s, same
//! per-edge check order, first staged offender wins — exactly the error
//! the incremental path would have returned at that `connect` call), and
//! counting-sorted directly into the final CSR arrays. The counting sort
//! is stable per source, so the resulting [`CsrTopology`] is
//! *bit-identical* to what the incremental path builds from the same edge
//! sequence. The produced [`Network`] is born frozen: the adjacency-list
//! side never materialises.
//!
//! ```
//! use sgl_snn::{NetworkBuilder, LifParams};
//!
//! let mut b = NetworkBuilder::with_capacity(2, 1);
//! let a = b.add_neuron(LifParams::gate(1.0));
//! let t = b.add_neuron(LifParams::gate(1.0));
//! b.connect(a, t, 1.5, 3); // staged, not yet validated
//! b.mark_input(a);
//! b.set_terminal(t);
//! let net = b.build().unwrap(); // validate + counting-sort into CSR
//! assert!(net.is_frozen());
//! assert_eq!(net.synapse_count(), 1);
//! ```

use crate::error::SnnError;
use crate::network::{CsrTopology, Network, Synapse};
use crate::params::LifParams;
use crate::types::NeuronId;

/// One staged `(src, dst, weight, delay)` record awaiting compilation.
#[derive(Clone, Copy, Debug, PartialEq)]
struct StagedEdge {
    src: NeuronId,
    dst: NeuronId,
    weight: f64,
    delay: u32,
}

/// Stages neurons and edges for one-pass bulk compilation into a frozen
/// [`Network`] (see the [module docs](self) for why and when).
///
/// Unlike [`Network::connect`], [`NetworkBuilder::connect`] is infallible:
/// validation is deferred to [`NetworkBuilder::build`], which checks every
/// staged edge in one pass and reports the first offender with the same
/// [`SnnError`] the incremental path would have produced.
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    params: Vec<LifParams>,
    edges: Vec<StagedEdge>,
    inputs: Vec<NeuronId>,
    outputs: Vec<NeuronId>,
    terminal: Option<NeuronId>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `neurons` neurons and `edges` edges
    /// — both buffers are flat, so this is the only allocation mass
    /// construction needs.
    #[must_use]
    pub fn with_capacity(neurons: usize, edges: usize) -> Self {
        Self {
            params: Vec::with_capacity(neurons),
            edges: Vec::with_capacity(edges),
            ..Self::default()
        }
    }

    /// Adds a neuron with the given parameters and returns its id.
    pub fn add_neuron(&mut self, params: LifParams) -> NeuronId {
        debug_assert!(params.validate().is_ok(), "invalid LIF parameters");
        let id = NeuronId(u32::try_from(self.params.len()).expect("more than u32::MAX neurons"));
        self.params.push(params);
        id
    }

    /// Adds `count` neurons sharing the same parameters; returns their ids.
    pub fn add_neurons(&mut self, params: LifParams, count: usize) -> Vec<NeuronId> {
        debug_assert!(params.validate().is_ok(), "invalid LIF parameters");
        let start = self.params.len();
        u32::try_from(start + count).expect("more than u32::MAX neurons");
        self.params.reserve(count);
        for _ in 0..count {
            self.params.push(params);
        }
        (start..start + count).map(|i| NeuronId(i as u32)).collect()
    }

    /// Stages the edge `src -> dst`; validated later by
    /// [`NetworkBuilder::build`].
    pub fn connect(&mut self, src: NeuronId, dst: NeuronId, weight: f64, delay: u32) {
        self.edges.push(StagedEdge {
            src,
            dst,
            weight,
            delay,
        });
    }

    /// Marks `id` as an input neuron (idempotent).
    pub fn mark_input(&mut self, id: NeuronId) {
        if !self.inputs.contains(&id) {
            self.inputs.push(id);
        }
    }

    /// Marks `id` as an output neuron (idempotent).
    pub fn mark_output(&mut self, id: NeuronId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Designates the terminal neuron whose first spike ends the
    /// computation (Definition 3).
    pub fn set_terminal(&mut self, id: NeuronId) {
        self.terminal = Some(id);
    }

    /// Number of neurons staged so far.
    #[must_use]
    pub fn neuron_count(&self) -> usize {
        self.params.len()
    }

    /// Number of edges staged so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Largest absolute weight staged so far (0 for no edges) — circuit
    /// analyses in §5 distinguish polynomially- from exponentially-bounded
    /// weights before the network is even compiled.
    #[must_use]
    pub fn max_abs_weight(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.weight.abs())
            .fold(0.0, f64::max)
    }

    /// Compiles the staged neurons and edges into a frozen [`Network`].
    ///
    /// One validation pass (per edge, in staging order: unknown source,
    /// unknown destination, zero delay, non-finite weight — the same
    /// checks, in the same order, as [`Network::connect`]), then a stable
    /// counting sort scatters the edges into the final CSR arrays. No
    /// per-neuron allocation is ever made and the adjacency-list
    /// representation never exists; the result answers every read-only
    /// accessor identically to an incrementally-built network, with
    /// bit-identical CSR layout.
    ///
    /// # Errors
    /// The first staged edge that the incremental path would have
    /// rejected, with the same [`SnnError`].
    pub fn build(self) -> Result<Network, SnnError> {
        let n = self.params.len();
        let m = self.edges.len();

        // Pass 1: validate every edge, count out-degrees, track max delay.
        let mut counts = vec![0usize; n];
        let mut max_delay = 0u32;
        for e in &self.edges {
            if e.src.index() >= n {
                return Err(SnnError::UnknownNeuron(e.src));
            }
            if e.dst.index() >= n {
                return Err(SnnError::UnknownNeuron(e.dst));
            }
            if e.delay == 0 {
                return Err(SnnError::ZeroDelay {
                    src: e.src,
                    dst: e.dst,
                });
            }
            if !e.weight.is_finite() {
                return Err(SnnError::NonFiniteWeight {
                    src: e.src,
                    dst: e.dst,
                });
            }
            counts[e.src.index()] += 1;
            max_delay = max_delay.max(e.delay);
        }

        // Prefix-sum the counts into CSR offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        debug_assert_eq!(acc, m);

        // Pass 2: stable scatter — walking the staged edges in order and
        // bumping a per-source cursor preserves each source's relative
        // edge order, so the layout matches CsrTopology::build on the
        // adjacency list the incremental path would have grown.
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut synapses = vec![
            Synapse {
                target: NeuronId(0),
                weight: 0.0,
                delay: 1,
            };
            m
        ];
        for e in &self.edges {
            let slot = cursor[e.src.index()];
            cursor[e.src.index()] = slot + 1;
            synapses[slot] = Synapse {
                target: e.dst,
                weight: e.weight,
                delay: e.delay,
            };
        }

        Ok(Network::from_frozen(
            self.params,
            CsrTopology::from_parts(offsets, synapses),
            self.inputs,
            self.outputs,
            self.terminal,
            max_delay,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_build_matches_incremental_layout() {
        let mut b = NetworkBuilder::with_capacity(4, 5);
        let ids = b.add_neurons(LifParams::default(), 4);
        // Interleave sources to exercise the scatter's stability.
        b.connect(ids[2], ids[0], 1.0, 2);
        b.connect(ids[0], ids[1], 2.0, 1);
        b.connect(ids[2], ids[3], -3.0, 4);
        b.connect(ids[0], ids[2], 0.5, 7);
        b.connect(ids[2], ids[2], -1.5, 1);
        b.mark_input(ids[0]);
        b.mark_output(ids[3]);
        b.set_terminal(ids[3]);
        let bulk = b.build().unwrap();

        let mut net = Network::with_capacity(4);
        let jds = net.add_neurons(LifParams::default(), 4);
        net.connect(jds[2], jds[0], 1.0, 2).unwrap();
        net.connect(jds[0], jds[1], 2.0, 1).unwrap();
        net.connect(jds[2], jds[3], -3.0, 4).unwrap();
        net.connect(jds[0], jds[2], 0.5, 7).unwrap();
        net.connect(jds[2], jds[2], -1.5, 1).unwrap();
        net.mark_input(jds[0]);
        net.mark_output(jds[3]);
        net.set_terminal(jds[3]);

        assert!(bulk.is_frozen());
        assert_eq!(bulk.csr(), net.csr());
        assert_eq!(bulk.neuron_count(), net.neuron_count());
        assert_eq!(bulk.synapse_count(), net.synapse_count());
        assert_eq!(bulk.max_delay(), net.max_delay());
        assert_eq!(bulk.inputs(), net.inputs());
        assert_eq!(bulk.outputs(), net.outputs());
        assert_eq!(bulk.terminal(), net.terminal());
        assert_eq!(bulk.in_degrees(), net.in_degrees());
        assert!(bulk.validate(false).is_ok());
    }

    #[test]
    fn empty_builder_builds_empty_network() {
        let net = NetworkBuilder::new().build().unwrap();
        assert_eq!(net.neuron_count(), 0);
        assert_eq!(net.synapse_count(), 0);
        assert_eq!(net.max_delay(), 0);
        assert!(net.csr().all().is_empty());
    }

    #[test]
    fn validation_errors_match_incremental() {
        let mk = || {
            let mut b = NetworkBuilder::new();
            let ids = b.add_neurons(LifParams::default(), 2);
            (b, ids)
        };

        let (mut b, ids) = mk();
        let ghost = NeuronId(99);
        b.connect(ghost, ids[0], 1.0, 1);
        assert_eq!(b.build().unwrap_err(), SnnError::UnknownNeuron(ghost));

        let (mut b, ids) = mk();
        b.connect(ids[0], ghost, 1.0, 1);
        assert_eq!(b.build().unwrap_err(), SnnError::UnknownNeuron(ghost));

        let (mut b, ids) = mk();
        b.connect(ids[0], ids[1], 1.0, 0);
        assert_eq!(
            b.build().unwrap_err(),
            SnnError::ZeroDelay {
                src: ids[0],
                dst: ids[1]
            }
        );

        let (mut b, ids) = mk();
        b.connect(ids[0], ids[1], f64::NAN, 1);
        assert_eq!(
            b.build().unwrap_err(),
            SnnError::NonFiniteWeight {
                src: ids[0],
                dst: ids[1]
            }
        );

        // First staged offender wins, and per-edge checks run in the
        // incremental order (src before dst before delay before weight).
        let (mut b, ids) = mk();
        b.connect(ids[0], ids[1], 1.0, 1);
        b.connect(ghost, ids[1], f64::NAN, 0); // src check fires first
        b.connect(ids[0], ids[1], 1.0, 0); // never reached
        assert_eq!(b.build().unwrap_err(), SnnError::UnknownNeuron(ghost));
    }

    #[test]
    fn builder_accessors_track_staging() {
        let mut b = NetworkBuilder::new();
        let ids = b.add_neurons(LifParams::default(), 3);
        assert_eq!(b.neuron_count(), 3);
        assert_eq!(b.edge_count(), 0);
        assert_eq!(b.max_abs_weight(), 0.0);
        b.connect(ids[0], ids[1], -4.0, 1);
        b.connect(ids[1], ids[2], 2.0, 1);
        assert_eq!(b.edge_count(), 2);
        assert_eq!(b.max_abs_weight(), 4.0);
    }

    #[test]
    fn built_network_simulates_like_incremental() {
        use crate::engine::{DenseEngine, Engine, EventEngine, RunConfig};

        let mut b = NetworkBuilder::new();
        let a = b.add_neuron(LifParams::gate(1.0));
        let t = b.add_neuron(LifParams::gate(1.0));
        b.connect(a, t, 1.5, 3);
        b.mark_input(a);
        b.set_terminal(t);
        let net = b.build().unwrap();

        let cfg = RunConfig::until_terminal(100);
        let dense = DenseEngine.run(&net, &[a], &cfg).unwrap();
        let event = EventEngine.run(&net, &[a], &cfg).unwrap();
        assert_eq!(dense.first_spike(t), Some(3));
        assert_eq!(event.first_spike(t), Some(3));
    }
}

//! # sgl-snn — discrete-time spiking neural network simulator
//!
//! Implements the leaky-integrate-and-fire (LIF) system and neuron models of
//! Aimone et al., *Provable Advantages for Graph Algorithms in Spiking Neural
//! Networks* (SPAA 2021), Definitions 1–3.
//!
//! A [`Network`] is a directed graph of LIF neurons. Each neuron `j` carries
//! programmable parameters `(v_reset, v_threshold, tau)` and each synapse
//! `i -> j` carries a weight `w_ij` and an integer delay `d_ij >= 1`.
//! Dynamics per time step `t >= 1`:
//!
//! ```text
//! v̂_j(t) = v_j(t-1) - (v_j(t-1) - v_reset) * tau + v_syn_j(t)
//! f_j(t) = 1  iff  v̂_j(t) > v_threshold
//! v_j(t) = v_reset if f_j(t) = 1, else v̂_j(t)
//! ```
//!
//! where `v_syn_j(t)` sums `w_ij` over synapses whose source fired at time
//! `t - d_ij`. This convention makes `d_ij` the *total* latency of a synapse:
//! a spike emitted at time `t` can cause the downstream neuron to fire at
//! exactly `t + d_ij`, so a feed-forward circuit of depth `q` with unit
//! delays produces its output at time `q`, and the delay-encoded shortest
//! path algorithms of the paper read distances directly off spike times.
//! (The paper's Eqs. (1)–(4) index the synaptic sum one step earlier; we
//! absorb that constant so the minimum-latency synapse costs one step,
//! matching the paper's assumption that "feed-forward circuits of threshold
//! gates can run in time proportional to depth".)
//!
//! Two execution engines are provided and tested for equivalence:
//!
//! * [`engine::DenseEngine`] — literal time-stepped implementation; updates
//!   every neuron every step. Transparent and robust; use for small nets.
//! * [`engine::EventEngine`] — event-driven implementation that only touches
//!   neurons when spikes arrive, applying voltage decay lazily. This is the
//!   engine that gives the practical scalability the paper argues for:
//!   cost is proportional to spike traffic, not `neurons x steps`.
//!
//! ## Quick example
//!
//! ```
//! use sgl_snn::{Network, LifParams, engine::{Engine, EventEngine, RunConfig}};
//!
//! let mut net = Network::new();
//! let a = net.add_neuron(LifParams::gate(1.0));
//! let b = net.add_neuron(LifParams::gate(1.0));
//! net.connect(a, b, 1.5, 3).unwrap(); // weight 1.5, delay 3
//! net.set_terminal(b);
//!
//! let result = EventEngine.run(&net, &[a], &RunConfig::until_terminal(100)).unwrap();
//! assert_eq!(result.first_spike(b), Some(3));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Indexed loops over several parallel per-node arrays are the house style
// for the graph/neuron kernels here; iterator zips would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod audit;
pub mod builder;
pub mod encoding;
pub mod engine;
pub mod error;
pub mod network;
pub mod params;
pub mod partition;
pub mod probe;
pub mod raster;
pub mod types;

pub use builder::NetworkBuilder;
pub use encoding::{read_value, value_to_bits};
pub use engine::{
    run_jobs, BatchRunner, BitplaneEngine, DenseEngine, Engine, EngineChoice, EventEngine,
    NullObserver, ParallelDenseEngine, RunConfig, RunObserver, RunResult, RunScratch, RunSpec,
    SimStats, StopCondition, StopReason, TimeSeriesObserver,
};
pub use error::SnnError;
pub use network::{BitplaneTopology, Network, Synapse};
pub use params::LifParams;
pub use partition::{
    CutStrategy, PartitionPlan, PartitionRunStats, PartitionedEngine, WorkerStats,
};
pub use raster::SpikeRaster;
pub use types::{NeuronId, Time};

//! Voltage probes: recording membrane-potential traces.
//!
//! The engines normally expose only spikes (the architecturally observable
//! events). For debugging circuits and for teaching the LIF dynamics of
//! Definition 2, this module runs the literal time-stepped update while
//! recording the *voltage* of selected neurons at every step — the `v(t)`
//! series of Eq. (1)–(3), including the reset after each spike.

use crate::network::Network;
use crate::types::{NeuronId, Time};
use std::collections::HashMap;

/// A recorded voltage trace: `trace[t]` is `v(t)` for `t = 0..=steps`.
#[derive(Clone, Debug, PartialEq)]
pub struct VoltageTrace {
    /// Neuron the trace belongs to.
    pub neuron: NeuronId,
    /// `v(t)` per step, starting at `v(0) = v_reset`.
    pub voltages: Vec<f64>,
    /// Steps at which the neuron fired.
    pub spikes: Vec<Time>,
}

impl VoltageTrace {
    /// Highest voltage ever reached (after synaptic input, before reset).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.voltages.iter().copied().fold(f64::MIN, f64::max)
    }
}

/// Runs `net` for exactly `steps` steps with the dense (literal) dynamics,
/// recording voltage traces for `probes`. Initial spikes are induced at
/// `t = 0` as usual.
///
/// # Panics
/// Panics if a probe or initial neuron is out of range.
#[must_use]
pub fn record_traces(
    net: &Network,
    initial_spikes: &[NeuronId],
    probes: &[NeuronId],
    steps: Time,
) -> Vec<VoltageTrace> {
    let n = net.neuron_count();
    for &p in probes.iter().chain(initial_spikes) {
        assert!(p.index() < n, "neuron {p} out of range");
    }
    let mut voltages: Vec<f64> = net.neuron_ids().map(|id| net.params(id).v_reset).collect();
    let mut pending: HashMap<Time, Vec<(usize, f64)>> = HashMap::new();
    let mut traces: Vec<VoltageTrace> = probes
        .iter()
        .map(|&p| VoltageTrace {
            neuron: p,
            voltages: vec![voltages[p.index()]],
            spikes: Vec::new(),
        })
        .collect();

    // t = 0 spikes.
    let mut fired: Vec<usize> = initial_spikes.iter().map(|i| i.index()).collect();
    fired.sort_unstable();
    fired.dedup();
    for tr in &mut traces {
        if fired.contains(&tr.neuron.index()) {
            tr.spikes.push(0);
        }
    }
    let route = |net: &Network,
                 fired: &[usize],
                 t: Time,
                 pending: &mut HashMap<Time, Vec<(usize, f64)>>| {
        for &u in fired {
            for s in net.synapses_from(NeuronId(u as u32)) {
                pending
                    .entry(t + Time::from(s.delay))
                    .or_default()
                    .push((s.target.index(), s.weight));
            }
        }
    };
    route(net, &fired, 0, &mut pending);

    for t in 1..=steps {
        let mut syn = vec![0.0f64; n];
        if let Some(batch) = pending.remove(&t) {
            for (v, w) in batch {
                syn[v] += w;
            }
        }
        fired.clear();
        for v in 0..n {
            let p = net.params(NeuronId(v as u32));
            let v_hat = voltages[v] - (voltages[v] - p.v_reset) * p.decay + syn[v];
            if v_hat > p.v_threshold {
                fired.push(v);
                voltages[v] = p.v_reset;
            } else {
                voltages[v] = v_hat;
            }
        }
        route(net, &fired, t, &mut pending);
        for tr in &mut traces {
            tr.voltages.push(voltages[tr.neuron.index()]);
            if fired.contains(&tr.neuron.index()) {
                tr.spikes.push(t);
            }
        }
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    #[test]
    fn integrator_staircase() {
        // Unit pulses every 3 steps into a threshold-2.5 integrator:
        // voltage climbs 1, 2, then fires at 3 and resets.
        let mut net = Network::new();
        let clock = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(clock, clock, 1.0, 3).unwrap();
        let acc = net.add_neuron(LifParams::integrator(2.5));
        net.connect(clock, acc, 1.0, 1).unwrap();
        let traces = record_traces(&net, &[clock], &[acc], 12);
        let tr = &traces[0];
        assert_eq!(tr.voltages[1], 1.0); // pulse from t=0 arrives at 1
        assert_eq!(tr.voltages[4], 2.0);
        assert_eq!(tr.voltages[7], 0.0); // third pulse crosses 2.5 -> reset
        assert_eq!(tr.spikes, vec![7]);
        assert_eq!(tr.peak(), 2.0); // recorded post-reset voltages
    }

    #[test]
    fn leaky_decay_is_geometric() {
        let mut net = Network::new();
        let src = net.add_neuron(LifParams::gate_at_least(1));
        let leaky = net.add_neuron(LifParams {
            v_reset: 0.0,
            v_threshold: 10.0,
            decay: 0.5,
        });
        net.connect(src, leaky, 8.0, 1).unwrap();
        let traces = record_traces(&net, &[src], &[leaky], 5);
        let v = &traces[0].voltages;
        assert_eq!(&v[1..=4], &[8.0, 4.0, 2.0, 1.0]);
    }

    #[test]
    fn gate_drains_completely() {
        let mut net = Network::new();
        let src = net.add_neuron(LifParams::gate_at_least(1));
        let gate = net.add_neuron(LifParams::gate(5.0)); // sub-threshold input
        net.connect(src, gate, 3.0, 1).unwrap();
        let traces = record_traces(&net, &[src], &[gate], 3);
        assert_eq!(traces[0].voltages, vec![0.0, 3.0, 0.0, 0.0]);
        assert!(traces[0].spikes.is_empty());
    }

    #[test]
    fn spike_times_match_engine() {
        use crate::engine::{DenseEngine, Engine, RunConfig};
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 3);
        net.connect(ids[0], ids[1], 1.0, 2).unwrap();
        net.connect(ids[1], ids[2], 1.0, 3).unwrap();
        let traces = record_traces(&net, &[ids[0]], &ids, 8);
        let engine = DenseEngine
            .run(&net, &[ids[0]], &RunConfig::fixed(8).with_raster())
            .unwrap();
        for tr in &traces {
            assert_eq!(
                tr.spikes,
                engine.raster.as_ref().unwrap().spikes_of(tr.neuron)
            );
        }
    }
}

//! Voltage probes: recording membrane-potential traces.
//!
//! The engines normally expose only spikes (the architecturally observable
//! events). For debugging circuits and for teaching the LIF dynamics of
//! Definition 2, this module runs the literal time-stepped update while
//! recording the *voltage* of selected neurons at every step — the `v(t)`
//! series of Eq. (1)–(3), including the reset after each spike.

use crate::engine::wheel::TimeWheel;
use crate::network::{CsrTopology, Network};
use crate::types::{NeuronId, Time};

/// A recorded voltage trace: `trace[t]` is `v(t)` for `t = 0..=steps`.
#[derive(Clone, Debug, PartialEq)]
pub struct VoltageTrace {
    /// Neuron the trace belongs to.
    pub neuron: NeuronId,
    /// `v(t)` per step, starting at `v(0) = v_reset`.
    pub voltages: Vec<f64>,
    /// Steps at which the neuron fired.
    pub spikes: Vec<Time>,
}

impl VoltageTrace {
    /// Highest voltage ever reached (after synaptic input, before reset).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.voltages.iter().copied().fold(f64::MIN, f64::max)
    }
}

/// Runs `net` for exactly `steps` steps with the dense (literal) dynamics,
/// recording voltage traces for `probes`. Initial spikes are induced at
/// `t = 0` as usual.
///
/// Pending deliveries go through the same [`TimeWheel`] the engines use,
/// in the same (sorted firing id) × (CSR synapse order) scheduling order —
/// so per-target floating-point sums, and therefore the recorded voltages
/// and spike times, match the engines bit for bit.
///
/// # Panics
/// Panics if a probe or initial neuron is out of range.
#[must_use]
pub fn record_traces(
    net: &Network,
    initial_spikes: &[NeuronId],
    probes: &[NeuronId],
    steps: Time,
) -> Vec<VoltageTrace> {
    let n = net.neuron_count();
    for &p in probes.iter().chain(initial_spikes) {
        assert!(p.index() < n, "neuron {p} out of range");
    }
    let csr = net.csr();
    let params = net.params_slice();
    let mut voltages: Vec<f64> = params.iter().map(|p| p.v_reset).collect();
    let mut wheel = TimeWheel::new(net.max_delay());
    let mut batch: Vec<(NeuronId, f64)> = Vec::new();
    let mut traces: Vec<VoltageTrace> = probes
        .iter()
        .map(|&p| VoltageTrace {
            neuron: p,
            voltages: vec![voltages[p.index()]],
            spikes: Vec::new(),
        })
        .collect();

    // t = 0 spikes.
    let mut fired: Vec<NeuronId> = initial_spikes.to_vec();
    fired.sort_unstable();
    fired.dedup();
    for tr in &mut traces {
        if fired.contains(&tr.neuron) {
            tr.spikes.push(0);
        }
    }
    route(csr, &fired, 0, &mut wheel);

    let mut syn = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    for t in 1..=steps {
        batch.clear();
        wheel.drain_at(t, &mut batch);
        for &(id, w) in &batch {
            let i = id.index();
            if syn[i] == 0.0 {
                touched.push(i);
            }
            syn[i] += w;
        }
        fired.clear();
        for (i, p) in params.iter().enumerate() {
            let v = voltages[i];
            let v_hat = v - (v - p.v_reset) * p.decay + syn[i];
            if v_hat > p.v_threshold {
                fired.push(NeuronId(i as u32));
                voltages[i] = p.v_reset;
            } else {
                voltages[i] = v_hat;
            }
        }
        for &i in &touched {
            syn[i] = 0.0;
        }
        touched.clear();
        route(csr, &fired, t, &mut wheel);
        for tr in &mut traces {
            tr.voltages.push(voltages[tr.neuron.index()]);
            if fired.contains(&tr.neuron) {
                tr.spikes.push(t);
            }
        }
    }
    traces
}

/// Schedules fan-out exactly like the engines' `route_spikes` (without the
/// stats recorder): sorted firing ids × CSR synapse order.
fn route(csr: &CsrTopology, fired: &[NeuronId], t: Time, wheel: &mut TimeWheel) {
    for &id in fired {
        for s in csr.out(id.index()) {
            wheel.schedule(t + Time::from(s.delay), s.target, s.weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    #[test]
    fn integrator_staircase() {
        // Unit pulses every 3 steps into a threshold-2.5 integrator:
        // voltage climbs 1, 2, then fires at 3 and resets.
        let mut net = Network::new();
        let clock = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(clock, clock, 1.0, 3).unwrap();
        let acc = net.add_neuron(LifParams::integrator(2.5));
        net.connect(clock, acc, 1.0, 1).unwrap();
        let traces = record_traces(&net, &[clock], &[acc], 12);
        let tr = &traces[0];
        assert_eq!(tr.voltages[1], 1.0); // pulse from t=0 arrives at 1
        assert_eq!(tr.voltages[4], 2.0);
        assert_eq!(tr.voltages[7], 0.0); // third pulse crosses 2.5 -> reset
        assert_eq!(tr.spikes, vec![7]);
        assert_eq!(tr.peak(), 2.0); // recorded post-reset voltages
    }

    #[test]
    fn leaky_decay_is_geometric() {
        let mut net = Network::new();
        let src = net.add_neuron(LifParams::gate_at_least(1));
        let leaky = net.add_neuron(LifParams {
            v_reset: 0.0,
            v_threshold: 10.0,
            decay: 0.5,
        });
        net.connect(src, leaky, 8.0, 1).unwrap();
        let traces = record_traces(&net, &[src], &[leaky], 5);
        let v = &traces[0].voltages;
        assert_eq!(&v[1..=4], &[8.0, 4.0, 2.0, 1.0]);
    }

    #[test]
    fn gate_drains_completely() {
        let mut net = Network::new();
        let src = net.add_neuron(LifParams::gate_at_least(1));
        let gate = net.add_neuron(LifParams::gate(5.0)); // sub-threshold input
        net.connect(src, gate, 3.0, 1).unwrap();
        let traces = record_traces(&net, &[src], &[gate], 3);
        assert_eq!(traces[0].voltages, vec![0.0, 3.0, 0.0, 0.0]);
        assert!(traces[0].spikes.is_empty());
    }

    #[test]
    fn spike_times_match_engine() {
        use crate::engine::{DenseEngine, Engine, RunConfig};
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 3);
        net.connect(ids[0], ids[1], 1.0, 2).unwrap();
        net.connect(ids[1], ids[2], 1.0, 3).unwrap();
        let traces = record_traces(&net, &[ids[0]], &ids, 8);
        let engine = DenseEngine
            .run(&net, &[ids[0]], &RunConfig::fixed(8).with_raster())
            .unwrap();
        for tr in &traces {
            assert_eq!(
                tr.spikes,
                engine.raster.as_ref().unwrap().spikes_of(tr.neuron)
            );
        }
    }
}

//! Partitioned SNN execution: edge-cut compilation, inter-partition
//! spike channels, and bulk-synchronous tick exchange.
//!
//! The monolithic engines hold one [`crate::Network`] in one address
//! space; at the n = 10^5..10^6 scale the paper's Table-1 bounds invite,
//! that stops fitting. This module follows the multi-chip scaling recipe
//! of von Seeler et al. (*Road to scalability for efficient graph search
//! on massively parallel neuromorphic hardware*): partition the neuron
//! set, compile one frozen sub-network per partition, run the partitions
//! independently, and pay only for cut-edge spike traffic — all
//! inter-partition communication is pure spike events, per Hamilton,
//! Mintz & Schuman's spike-based primitives discipline.
//!
//! Three layers:
//!
//! * [`cut`] — pluggable [`Partitioner`] strategies producing a
//!   neuron → partition assignment ([`RangePartitioner`],
//!   [`BfsGrowPartitioner`]).
//! * [`plan`] — [`PartitionPlan::compile`] splits the CSR into frozen
//!   sub-networks (via the `NetworkBuilder` counting-sort path) plus
//!   [`CutSynapse`] tables, and accounts the whole footprint in
//!   [`PartitionPlan::memory_bytes`].
//! * [`engine`] — [`PartitionedEngine`] drives the sub-networks in
//!   bulk-synchronous supersteps, exchanging [`channel::SpikeEvent`]s
//!   over SPSC [`channel::SpikeChannel`] rings. Because every synapse
//!   has delay >= 1, the exchange horizon is exactly one tick.
//! * [`driver`] — the threaded BSP driver: a persistent worker pool
//!   where each worker owns a fixed set of partitions and meets the
//!   others at a tiered barrier between the compute and merge phases.
//!   Engaged by [`PartitionedEngine::with_threads`] (or
//!   [`PartitionPlan::run_threaded`]); `threads <= 1` stays on the
//!   sequential driver with zero barrier overhead.
//!
//! Results are bit-identical to [`crate::engine::EventEngine`] — same
//! spike times, same raster, same work counters — under any partition
//! count or strategy *and any thread count*; the differential proptests
//! in `tests/engine_equivalence.rs` enforce this at 1/2/4/8 partitions
//! and 1/2/4 worker threads.

pub mod channel;
pub mod cut;
mod driver;
pub mod engine;
pub mod plan;

pub use channel::{SpikeChannel, SpikeEvent};
pub use cut::{BfsGrowPartitioner, CutStrategy, Partitioner, RangePartitioner};
pub use engine::{ChannelTraffic, PartitionRunStats, PartitionedEngine, WorkerStats};
pub use plan::{CutSynapse, PartitionPlan};

//! Partition plans: a network compiled into frozen sub-networks plus cut
//! tables.
//!
//! Compilation splits each source neuron's CSR row into *intra* synapses
//! (both endpoints in one partition — recompiled into that partition's
//! sub-[`Network`] through the `NetworkBuilder` counting-sort path) and
//! *cut* synapses (endpoints in different partitions — rewritten into
//! [`CutSynapse`] entries that the engine turns into channel traffic).
//! Because the split is per source row and both halves keep CSR order,
//! every target still receives its deliveries in the monolithic order
//! once the engine's exchange merge recombines the streams.
//!
//! Local ids within a partition are assigned in ascending *global* id
//! order. That single choice is what makes the runtime merge cheap: a
//! partition's fired list sorted by local id is already sorted by global
//! id, and a peer's outbound batch (fired list × cut rows) arrives sorted
//! by global source id.

use crate::builder::NetworkBuilder;
use crate::error::SnnError;
use crate::network::Network;
use crate::types::{NeuronId, Time};

use super::channel::{ring_capacity, slot_bytes};
use super::cut::Partitioner;

/// Compile-size floor (neurons + synapses) below which
/// [`PartitionPlan::compile_with_threads`] builds partitions
/// sequentially: under this much work the per-thread spawn cost
/// outweighs the fan-out.
pub const PARALLEL_COMPILE_MIN_WORK: usize = 32_768;

/// One partition's compile output: the frozen sub-network, the
/// CSR-style per-source offsets into the cut table, and the cut table.
type BuiltPartition = (Network, Vec<usize>, Vec<CutSynapse>);

/// One boundary synapse, rewritten for channel transport: the owner of
/// the source pushes `(due, target_local, weight)` to partition `part`
/// whenever the source fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutSynapse {
    /// Destination partition.
    pub part: u32,
    /// Target neuron as a local id in the destination partition.
    pub target_local: u32,
    /// Synaptic weight.
    pub weight: f64,
    /// Synaptic delay in ticks (>= 1, inherited from the source network).
    pub delay: u32,
}

/// A network compiled for partitioned execution: one frozen sub-network
/// per partition, per-source cut tables, and the id maps linking local to
/// global neuron ids.
#[derive(Debug)]
pub struct PartitionPlan {
    parts: usize,
    n_total: usize,
    max_delay: u32,
    terminal: Option<NeuronId>,
    /// Global neuron id -> owning partition.
    assignment: Vec<u32>,
    /// Global neuron id -> local id within its partition.
    local_of: Vec<u32>,
    /// Per partition: local id -> global id, ascending.
    globals: Vec<Vec<NeuronId>>,
    /// Per partition: the frozen intra-partition sub-network.
    subnets: Vec<Network>,
    /// Per partition: CSR-style offsets into `cut_syn` per local source
    /// (length `local_count + 1`).
    cut_offsets: Vec<Vec<usize>>,
    /// Per partition: cut synapses grouped by local source, CSR order.
    cut_syn: Vec<Vec<CutSynapse>>,
    /// Cut-edge count per ordered partition pair, `pair_cut[from*parts+to]`.
    pair_cut: Vec<u64>,
    cut_edge_count: u64,
}

impl PartitionPlan {
    /// Compiles `net` into `parts` partitions using `partitioner`.
    ///
    /// Validates the network under the event-engine rules first (the
    /// partitioned engine shares the lazy-decay update, so spontaneous
    /// neurons are rejected the same way).
    ///
    /// # Errors
    /// Fails when the network is invalid for event-style execution.
    ///
    /// # Panics
    /// Panics when `partitioner` returns an assignment of the wrong
    /// length or with a partition id `>= parts` — a contract bug in the
    /// partitioner, not a data error.
    pub fn compile(
        net: &Network,
        parts: usize,
        partitioner: &dyn Partitioner,
    ) -> Result<Self, SnnError> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::compile_with_threads(net, parts, partitioner, threads)
    }

    /// [`Self::compile`] with an explicit thread count for the
    /// per-partition sub-network builds. The builds are independent
    /// (each reads the shared CSR and writes only its own partition's
    /// tables), so they fan out across a scoped worker pool; the
    /// resulting plan is identical to a sequential compile, and build
    /// errors surface in partition order. Small compiles (below
    /// [`PARALLEL_COMPILE_MIN_WORK`] neurons + synapses) stay sequential
    /// — thread spawns would cost more than the build.
    ///
    /// # Errors
    /// Fails when the network is invalid for event-style execution.
    ///
    /// # Panics
    /// Same partitioner-contract panics as [`Self::compile`].
    pub fn compile_with_threads(
        net: &Network,
        parts: usize,
        partitioner: &dyn Partitioner,
        threads: usize,
    ) -> Result<Self, SnnError> {
        net.validate(true)?;
        let parts = parts.max(1);
        let n = net.neuron_count();
        let assignment = partitioner.assign(net, parts);
        assert_eq!(
            assignment.len(),
            n,
            "partitioner must assign every neuron exactly once"
        );
        assert!(
            assignment.iter().all(|&p| (p as usize) < parts),
            "partitioner produced a partition id >= parts"
        );
        let csr = net.csr();
        let params = net.params_slice();

        // Local ids in ascending global order (see module docs).
        let mut globals: Vec<Vec<NeuronId>> = vec![Vec::new(); parts];
        let mut local_of = vec![0u32; n];
        for g in 0..n {
            let p = assignment[g] as usize;
            local_of[g] = u32::try_from(globals[p].len()).expect("partition too large");
            globals[p].push(NeuronId(g as u32));
        }

        // Pre-count intra/cut synapses per partition for exact capacity.
        let mut intra_counts = vec![0usize; parts];
        let mut cut_counts = vec![0usize; parts];
        let mut pair_cut = vec![0u64; parts * parts];
        for g in 0..n {
            let ps = assignment[g] as usize;
            for s in csr.out(g) {
                let pt = assignment[s.target.index()] as usize;
                if pt == ps {
                    intra_counts[ps] += 1;
                } else {
                    cut_counts[ps] += 1;
                    pair_cut[ps * parts + pt] += 1;
                }
            }
        }
        let cut_edge_count = pair_cut.iter().sum();

        // Per-partition sub-network builds: independent by construction
        // (partition `p` reads the shared CSR and writes only its own
        // builder + cut table), so they fan out over a scoped pool with
        // work-stealing claims when the compile is big enough to pay for
        // the spawns. Results land in index-order slots, so the compiled
        // plan — and which error wins when several partitions fail — is
        // identical to the sequential build.
        let build_one = |p: usize| -> Result<BuiltPartition, SnnError> {
            let mut b = NetworkBuilder::with_capacity(globals[p].len(), intra_counts[p]);
            let mut offs = Vec::with_capacity(globals[p].len() + 1);
            let mut cuts: Vec<CutSynapse> = Vec::with_capacity(cut_counts[p]);
            offs.push(0);
            for (l, &g) in globals[p].iter().enumerate() {
                let local = b.add_neuron(params[g.index()]);
                debug_assert_eq!(local.index(), l);
                for s in csr.out(g.index()) {
                    let pt = assignment[s.target.index()] as usize;
                    if pt == p {
                        b.connect(
                            local,
                            NeuronId(local_of[s.target.index()]),
                            s.weight,
                            s.delay,
                        );
                    } else {
                        cuts.push(CutSynapse {
                            part: pt as u32,
                            target_local: local_of[s.target.index()],
                            weight: s.weight,
                            delay: s.delay,
                        });
                    }
                }
                offs.push(cuts.len());
            }
            Ok((b.build()?, offs, cuts))
        };

        let workers = threads.clamp(1, parts);
        let work = n + net.synapse_count();
        let built: Vec<Result<BuiltPartition, SnnError>> =
            if workers >= 2 && work >= PARALLEL_COMPILE_MIN_WORK {
                use std::sync::atomic::{AtomicUsize, Ordering};
                use std::sync::Mutex;
                let next = AtomicUsize::new(0);
                let slots: Vec<Mutex<Option<_>>> = (0..parts).map(|_| Mutex::new(None)).collect();
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let p = next.fetch_add(1, Ordering::Relaxed);
                            if p >= parts {
                                break;
                            }
                            // Written exactly once, by the claiming
                            // worker; the mutex exists for `Sync`.
                            *slots[p].lock().expect("compile slot poisoned") = Some(build_one(p));
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|slot| {
                        slot.into_inner()
                            .expect("compile slot poisoned")
                            .expect("every partition below `parts` was claimed")
                    })
                    .collect()
            } else {
                (0..parts).map(build_one).collect()
            };

        let mut subnets = Vec::with_capacity(parts);
        let mut cut_offsets = Vec::with_capacity(parts);
        let mut cut_syn = Vec::with_capacity(parts);
        for r in built {
            let (sub, offs, cuts) = r?;
            subnets.push(sub);
            cut_offsets.push(offs);
            cut_syn.push(cuts);
        }

        Ok(Self {
            parts,
            n_total: n,
            max_delay: net.max_delay(),
            terminal: net.terminal(),
            assignment,
            local_of,
            globals,
            subnets,
            cut_offsets,
            cut_syn,
            pair_cut,
            cut_edge_count,
        })
    }

    /// Number of partitions (including any that received no neurons).
    #[must_use]
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Neuron count of the source network.
    #[must_use]
    pub fn neuron_count(&self) -> usize {
        self.n_total
    }

    /// Maximum synaptic delay of the *source* network. Every partition's
    /// scheduler wheel is sized to this global value so that in-horizon
    /// vs overflow classification — and therefore drain order — matches
    /// the monolithic wheel exactly.
    #[must_use]
    pub fn max_delay(&self) -> u32 {
        self.max_delay
    }

    /// Terminal neuron of the source network (global id), if designated.
    #[must_use]
    pub fn terminal(&self) -> Option<NeuronId> {
        self.terminal
    }

    /// Global neuron id -> owning partition.
    #[must_use]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Global neuron id -> local id within its owning partition.
    #[must_use]
    pub fn local_of(&self) -> &[u32] {
        &self.local_of
    }

    /// Local id -> global id for partition `p`, in ascending global order.
    #[must_use]
    pub fn globals(&self, p: usize) -> &[NeuronId] {
        &self.globals[p]
    }

    /// The frozen sub-network of partition `p`.
    #[must_use]
    pub fn subnet(&self, p: usize) -> &Network {
        &self.subnets[p]
    }

    /// Cut synapses of local source `l` in partition `p`, CSR order.
    #[must_use]
    pub fn cut_out(&self, p: usize, l: usize) -> &[CutSynapse] {
        &self.cut_syn[p][self.cut_offsets[p][l]..self.cut_offsets[p][l + 1]]
    }

    /// Total boundary synapses (the static edge cut).
    #[must_use]
    pub fn cut_edge_count(&self) -> u64 {
        self.cut_edge_count
    }

    /// Boundary synapses from partition `from` into partition `to`.
    #[must_use]
    pub fn pair_cut(&self, from: usize, to: usize) -> u64 {
        self.pair_cut[from * self.parts + to]
    }

    /// Ring capacity the engine allocates for the `from -> to` channel.
    #[must_use]
    pub fn channel_capacity(&self, from: usize, to: usize) -> usize {
        ring_capacity(self.pair_cut(from, to))
    }

    /// Absolute arrival tick of a cut synapse for a source firing at `t`.
    #[inline]
    pub(crate) fn due(t: Time, s: &CutSynapse) -> Time {
        t + Time::from(s.delay)
    }

    /// Heap bytes of the channel rings the engine will allocate: one ring
    /// per ordered partition pair with at least one cut synapse.
    #[must_use]
    pub fn channel_ring_bytes(&self) -> usize {
        let mut slots = 0usize;
        for from in 0..self.parts {
            for to in 0..self.parts {
                if from != to && self.pair_cut(from, to) > 0 {
                    slots += self.channel_capacity(from, to);
                }
            }
        }
        slots * slot_bytes()
    }

    /// Total heap footprint of the compiled plan: every sub-network's own
    /// [`Network::memory_bytes`] accounting, the cut tables, the id maps,
    /// and the channel rings the engine will allocate. This is the number
    /// the `EngineChoice::Auto` memory gate compares against its budget —
    /// partitioning does not escape the cost of the network itself, it
    /// bounds the cost per address space plus a cut-proportional overhead.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = 0usize;
        for sub in &self.subnets {
            total += sub.memory_bytes();
        }
        for offs in &self.cut_offsets {
            total += offs.capacity() * size_of::<usize>();
        }
        for cuts in &self.cut_syn {
            total += cuts.capacity() * size_of::<CutSynapse>();
        }
        for g in &self.globals {
            total += g.capacity() * size_of::<NeuronId>();
        }
        total += self.assignment.capacity() * size_of::<u32>();
        total += self.local_of.capacity() * size_of::<u32>();
        total += self.pair_cut.capacity() * size_of::<u64>();
        total += self.channel_ring_bytes();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::super::cut::RangePartitioner;
    use super::*;
    use crate::params::LifParams;

    fn ring(n: usize, delay: u32) -> Network {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), n);
        for i in 0..n {
            net.connect(ids[i], ids[(i + 1) % n], 1.0, delay).unwrap();
        }
        net
    }

    #[test]
    fn compile_conserves_neurons_and_synapses() {
        let net = ring(10, 3);
        let plan = PartitionPlan::compile(&net, 4, &RangePartitioner).unwrap();
        let sub_neurons: usize = (0..4).map(|p| plan.subnet(p).neuron_count()).sum();
        let sub_syn: u64 = (0..4).map(|p| plan.subnet(p).synapse_count() as u64).sum();
        assert_eq!(sub_neurons, 10);
        assert_eq!(sub_syn + plan.cut_edge_count(), 10);
        // Range split of a 10-ring into [3,3,3,1]: one cut per block edge
        // plus the wrap edge.
        assert_eq!(plan.cut_edge_count(), 4);
        assert_eq!(plan.max_delay(), 3);
    }

    #[test]
    fn local_ids_ascend_with_global_ids() {
        let net = ring(9, 1);
        let plan = PartitionPlan::compile(&net, 3, &RangePartitioner).unwrap();
        for p in 0..3 {
            let g = plan.globals(p);
            assert!(g.windows(2).all(|w| w[0] < w[1]));
            for (l, &gid) in g.iter().enumerate() {
                assert_eq!(plan.local_of()[gid.index()] as usize, l);
                assert_eq!(plan.assignment()[gid.index()] as usize, p);
            }
        }
    }

    #[test]
    fn subnets_are_born_frozen() {
        let net = ring(6, 2);
        let plan = PartitionPlan::compile(&net, 2, &RangePartitioner).unwrap();
        assert!(plan.subnet(0).is_frozen());
        assert!(plan.subnet(1).is_frozen());
    }

    #[test]
    fn single_partition_has_no_cut() {
        let net = ring(8, 2);
        let plan = PartitionPlan::compile(&net, 1, &RangePartitioner).unwrap();
        assert_eq!(plan.cut_edge_count(), 0);
        assert_eq!(plan.channel_ring_bytes(), 0);
        assert_eq!(plan.subnet(0).synapse_count(), 8);
    }

    #[test]
    fn memory_accounting_covers_subnets_and_rings() {
        let net = ring(32, 2);
        let plan = PartitionPlan::compile(&net, 4, &RangePartitioner).unwrap();
        let sub_total: usize = (0..4).map(|p| plan.subnet(p).memory_bytes()).sum();
        assert!(plan.memory_bytes() >= sub_total + plan.channel_ring_bytes());
        assert!(plan.channel_ring_bytes() > 0);
    }

    #[test]
    fn parallel_compile_matches_sequential() {
        // 1500 neurons x 25 fanout = ~39k work units: above
        // PARALLEL_COMPILE_MIN_WORK, so 4 threads take the pooled path.
        let n = 1500;
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), n);
        for i in 0..n {
            for k in 1..=25 {
                let j = (i + k * 53) % n;
                net.connect(ids[i], ids[j], 0.5, 1 + (k % 3) as u32)
                    .unwrap();
            }
        }
        assert!(n + net.synapse_count() >= PARALLEL_COMPILE_MIN_WORK);
        let seq = PartitionPlan::compile_with_threads(&net, 4, &RangePartitioner, 1).unwrap();
        let par = PartitionPlan::compile_with_threads(&net, 4, &RangePartitioner, 4).unwrap();
        assert_eq!(seq.cut_edge_count(), par.cut_edge_count());
        assert_eq!(seq.assignment(), par.assignment());
        assert_eq!(seq.local_of(), par.local_of());
        for p in 0..4 {
            assert_eq!(seq.globals(p), par.globals(p));
            assert_eq!(seq.subnet(p).neuron_count(), par.subnet(p).neuron_count());
            assert_eq!(seq.subnet(p).synapse_count(), par.subnet(p).synapse_count());
            assert_eq!(seq.cut_out(p, 0), par.cut_out(p, 0));
        }
        assert_eq!(seq.memory_bytes(), par.memory_bytes());
    }

    #[test]
    fn rejects_spontaneous_networks_like_the_event_engine() {
        let mut net = Network::new();
        net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        assert!(matches!(
            PartitionPlan::compile(&net, 2, &RangePartitioner),
            Err(SnnError::SpontaneousNeuron(_))
        ));
    }
}

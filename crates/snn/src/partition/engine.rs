//! The partitioned engine: bulk-synchronous superstep execution over a
//! [`PartitionPlan`].
//!
//! Each superstep `t` has two phases:
//!
//! 1. **Compute** — every partition drains its own scheduler wheel at `t`
//!    and updates exactly the neurons that received input (the event
//!    engine's lazy-decay update, verbatim). Because every synapse has
//!    delay >= 1, nothing a partition does at `t` can affect another
//!    partition at `t` — the exchange horizon is exactly one tick, so the
//!    compute phase needs no communication at all.
//! 2. **Exchange** — the barrier. Owners push one [`SpikeEvent`] per cut
//!    synapse of each fired source onto the destination's channel; then
//!    every partition schedules *all* deliveries addressed to it — its
//!    own intra-partition routing and each inbound channel stream — via a
//!    k-way merge by global source id.
//!
//! The merge is the bit-identity argument: monolithic engines schedule in
//! (sorted global firing id) × (CSR synapse order). Local ids ascend with
//! global ids, so a partition's fired list and every inbound channel
//! stream are each sorted by global source id, with disjoint sources;
//! merging them by source id therefore replays the exact monolithic
//! scheduling order into each partition wheel, and the wheels (sized to
//! the *global* max delay so horizon classification matches) drain in
//! scheduling order. Per-target floating-point accumulation order — and
//! with it every `RunResult` bit — is preserved.
//!
//! Two drivers share this phase structure. The sequential driver in this
//! module takes partitions in turn within one thread; the threaded
//! driver in [`super::driver`] gives each worker thread a fixed set of
//! partitions and meets the others at a tiered barrier between phases —
//! same phases, same merge, bit-identical results. `threads <= 1` (or a
//! plan with at most one non-empty partition) always takes the
//! sequential path, so single-threaded runs pay zero barrier overhead.

use sgl_observe::{NullObserver, RunObserver, SchedulerStats, StepRecord};

use crate::engine::wheel::TimeWheel;
use crate::engine::{Engine, Recorder, RunConfig, RunResult, StopCondition, StopReason};
use crate::error::SnnError;
use crate::network::Network;
use crate::params::LifParams;
use crate::types::{NeuronId, Time};

use super::channel::{SpikeChannel, SpikeEvent};
use super::cut::CutStrategy;
use super::plan::PartitionPlan;

/// Cut-traffic accounting for one directed spike channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelTraffic {
    /// Producing partition.
    pub from: u32,
    /// Consuming partition.
    pub to: u32,
    /// Static cut size: boundary synapses from `from` into `to`.
    pub cut_edges: u64,
    /// Spike events actually carried during the run.
    pub messages: u64,
    /// Events that missed the bounded ring and took the spill path.
    pub spilled: u64,
}

/// Per-worker totals for one threaded run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: u32,
    /// Partitions this worker owned.
    pub partitions: u32,
    /// Nanoseconds spent in compute + merge phases across the run.
    pub busy_ns: u64,
    /// Nanoseconds blocked at superstep barriers across the run.
    pub barrier_wait_ns: u64,
}

/// Partition-level counters for one run — the measurable side of the
/// cut-traffic vs partition-count tradeoff.
#[derive(Clone, Debug, Default)]
pub struct PartitionRunStats {
    /// Number of partitions driven.
    pub parts: usize,
    /// Worker threads that drove the supersteps (1 = sequential driver).
    pub threads: usize,
    /// Static edge cut of the plan.
    pub cut_edges: u64,
    /// Total spike events carried over all channels.
    pub cut_messages: u64,
    /// Total events that overflowed a channel ring into its spill list.
    pub spilled_messages: u64,
    /// Supersteps executed (including the `t = 0` injection step).
    pub supersteps: u64,
    /// Per-channel breakdown, ordered by `(from, to)`.
    pub channels: Vec<ChannelTraffic>,
    /// Per-worker busy/barrier-wait totals (empty for the sequential
    /// driver).
    pub workers: Vec<WorkerStats>,
    /// Worst superstep imbalance: the slowest worker's busy time over the
    /// per-worker mean (1.0 = perfectly balanced; 0 for sequential runs).
    pub imbalance_max: f64,
    /// Mean superstep imbalance across all supersteps the workers drove.
    pub imbalance_mean: f64,
}

/// Per-partition run state: the partition's scheduler wheel plus the
/// event engine's lazy-decay bookkeeping, all indexed by local id.
pub(super) struct PartState {
    pub(super) wheel: TimeWheel,
    batch: Vec<(NeuronId, f64)>,
    /// Local ids fired this superstep, ascending (== ascending global).
    pub(super) fired: Vec<u32>,
    voltages: Vec<f64>,
    last_update: Vec<Time>,
    accum: Vec<f64>,
    dirty: Vec<bool>,
    touched: Vec<NeuronId>,
    /// Per-peer inbound event buffers, recycled across supersteps.
    inbox: Vec<Vec<SpikeEvent>>,
    /// Per-peer merge cursors into `inbox`.
    merge_idx: Vec<usize>,
}

impl PartState {
    pub(super) fn new(local_count: usize, global_max_delay: u32, parts: usize) -> Self {
        Self {
            // Sized to the *global* max delay: in-horizon vs overflow
            // classification must match the monolithic wheel (see
            // `PartitionPlan::max_delay`).
            wheel: TimeWheel::new(global_max_delay),
            batch: Vec::new(),
            fired: Vec::new(),
            voltages: vec![0.0; local_count],
            last_update: vec![0; local_count],
            accum: vec![0.0; local_count],
            dirty: vec![false; local_count],
            touched: Vec::new(),
            inbox: vec![Vec::new(); parts],
            merge_idx: vec![0; parts],
        }
    }

    /// The compute phase: drain deliveries due at `t`, apply the event
    /// engine's lazy-decay update to every touched neuron, and collect
    /// fired local ids. Returns `(batch_len, updates)`.
    pub(super) fn step(&mut self, t: Time, params: &[LifParams]) -> (u64, u64) {
        self.batch.clear();
        self.wheel.drain_at(t, &mut self.batch);
        for &(id, w) in &self.batch {
            let i = id.index();
            if !self.dirty[i] {
                self.dirty[i] = true;
                self.touched.push(id);
            }
            self.accum[i] += w;
        }
        self.touched.sort_unstable();
        let updates = self.touched.len() as u64;

        self.fired.clear();
        for &id in &self.touched {
            let i = id.index();
            let p = &params[i];
            let dt = t - self.last_update[i];
            let v0 = self.voltages[i];
            let decayed = if dt == 0 || p.decay == 0.0 {
                v0
            } else if p.decay == 1.0 {
                p.v_reset
            } else {
                p.v_reset + (v0 - p.v_reset) * (1.0 - p.decay).powi(dt as i32)
            };
            let v_hat = decayed + self.accum[i];
            if v_hat > p.v_threshold {
                self.fired.push(id.0);
                self.voltages[i] = p.v_reset;
            } else {
                self.voltages[i] = v_hat;
            }
            self.last_update[i] = t;
            self.accum[i] = 0.0;
            self.dirty[i] = false;
        }
        self.touched.clear();
        (self.batch.len() as u64, updates)
    }
}

/// Earliest superstep with a pending delivery in any partition.
pub(super) fn next_superstep(states: &mut [PartState]) -> Option<Time> {
    let mut best: Option<Time> = None;
    for st in states.iter_mut() {
        if let Some(t) = st.wheel.next_time() {
            best = Some(best.map_or(t, |b| b.min(t)));
        }
    }
    best
}

/// Occupancy across all partition wheels. `in_flight` and
/// `overflow_hits` sum to exactly the monolithic values; `occupied_slots`
/// and `overflow_entries` may exceed them (the same arrival time can
/// occupy a slot in several wheels).
pub(super) fn aggregate_scheduler<'a>(
    states: impl IntoIterator<Item = &'a PartState>,
) -> SchedulerStats {
    let mut agg = SchedulerStats::default();
    for st in states {
        let s = st.wheel.observe();
        agg.in_flight += s.in_flight;
        agg.occupied_slots += s.occupied_slots;
        agg.overflow_entries += s.overflow_entries;
        agg.overflow_hits += s.overflow_hits;
    }
    agg
}

impl PartitionPlan {
    /// Runs the plan with spikes induced in `initial_spikes` (global ids)
    /// at `t = 0`. Bit-identical to running the source network on
    /// [`crate::engine::EventEngine`].
    ///
    /// # Errors
    /// Fails on unknown initial neurons, a `Terminal` stop condition
    /// without a terminal neuron, or (in strict mode) an exhausted step
    /// budget. The network itself was validated at compile time.
    pub fn run(
        &self,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        self.run_threaded(initial_spikes, config, 1)
    }

    /// [`Self::run`] driven by `threads` worker threads (1 = the
    /// sequential driver; see [`super::driver`]). Bit-identical to
    /// [`Self::run`] at any thread count.
    ///
    /// # Errors
    /// Same failure modes as [`Self::run`].
    pub fn run_threaded(
        &self,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        threads: usize,
    ) -> Result<RunResult, SnnError> {
        self.run_observed_threaded(initial_spikes, config, threads, &mut NullObserver)
            .map(|(result, _)| result)
    }

    /// [`Self::run`] returning the per-channel cut-traffic counters too.
    ///
    /// # Errors
    /// Same failure modes as [`Self::run`].
    pub fn run_with_stats(
        &self,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<(RunResult, PartitionRunStats), SnnError> {
        self.run_observed(initial_spikes, config, &mut NullObserver)
    }

    /// [`Self::run_threaded`] returning the run stats — including the
    /// per-worker busy/barrier-wait totals and superstep imbalance when
    /// the threaded driver actually engaged.
    ///
    /// # Errors
    /// Same failure modes as [`Self::run`].
    pub fn run_with_stats_threaded(
        &self,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        threads: usize,
    ) -> Result<(RunResult, PartitionRunStats), SnnError> {
        self.run_observed_threaded(initial_spikes, config, threads, &mut NullObserver)
    }

    /// [`Self::run`] with telemetry hooks. Alongside the usual step and
    /// scheduler series (aggregated across partitions), the observer
    /// receives [`RunObserver::on_cut_traffic`] once per channel with
    /// traffic per superstep.
    ///
    /// # Errors
    /// Same failure modes as [`Self::run`].
    pub fn run_observed<O: RunObserver>(
        &self,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        obs: &mut O,
    ) -> Result<(RunResult, PartitionRunStats), SnnError> {
        self.run_observed_threaded(initial_spikes, config, 1, obs)
    }

    /// [`Self::run_observed`] driven by `threads` workers. The step,
    /// scheduler, and cut-traffic series are bit-identical to the
    /// sequential driver's; the threaded driver additionally reports
    /// [`RunObserver::on_worker_superstep`],
    /// [`RunObserver::on_superstep_imbalance`], and the coordinator's
    /// [`RunObserver::on_barrier_wait`].
    ///
    /// # Errors
    /// Same failure modes as [`Self::run`].
    pub fn run_observed_threaded<O: RunObserver>(
        &self,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        threads: usize,
        obs: &mut O,
    ) -> Result<(RunResult, PartitionRunStats), SnnError> {
        let (result, stats) = self.run_core(initial_spikes, config, threads, obs)?;
        obs.on_finish(
            result.steps,
            result.stats.spike_events,
            result.stats.synaptic_deliveries,
            result.stats.neuron_updates,
        );
        Ok((result, stats))
    }

    fn run_core<O: RunObserver>(
        &self,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        threads: usize,
        obs: &mut O,
    ) -> Result<(RunResult, PartitionRunStats), SnnError> {
        let p = self.parts();
        for &id in initial_spikes {
            if id.index() >= self.neuron_count() {
                return Err(SnnError::UnknownNeuron(id));
            }
        }
        let mut rec = Recorder::with_shape(self.neuron_count(), self.terminal(), config)?;
        let mut states: Vec<PartState> = (0..p)
            .map(|q| PartState::new(self.subnet(q).neuron_count(), self.max_delay(), p))
            .collect();
        // One SPSC channel per ordered pair with at least one cut synapse.
        let channels: Vec<Option<SpikeChannel>> = (0..p * p)
            .map(|i| {
                let (from, to) = (i / p, i % p);
                (from != to && self.pair_cut(from, to) > 0)
                    .then(|| SpikeChannel::new(self.channel_capacity(from, to)))
            })
            .collect();
        let mut tick_traffic = vec![0u64; p * p];
        let mut supersteps = 1u64;

        // t = 0: induce the initial spikes and route their deliveries.
        let mut fired_global: Vec<NeuronId> = initial_spikes.to_vec();
        fired_global.sort_unstable();
        fired_global.dedup();
        for &id in &fired_global {
            let q = self.assignment()[id.index()] as usize;
            states[q].fired.push(self.local_of()[id.index()]);
        }
        let mut stop_hit = rec.record_step(0, &fired_global, &config.stop);
        let deliveries = self.exchange(0, &mut states, &channels, &mut tick_traffic, &mut rec);
        obs.on_step(
            0,
            StepRecord {
                spikes: fired_global.len() as u64,
                deliveries,
                updates: 0,
            },
        );
        if O::ENABLED {
            obs.on_scheduler(0, aggregate_scheduler(&states));
        }
        emit_cut_traffic(obs, 0, p, &mut tick_traffic);
        if stop_hit
            && !matches!(
                config.stop,
                StopCondition::MaxSteps | StopCondition::Quiescent
            )
        {
            let result = rec.finish(0, StopReason::ConditionMet, config)?;
            return Ok((result, self.traffic_stats(&channels, supersteps)));
        }

        // Occupancy-aware worker shedding (the PR 3 fix, applied here):
        // a worker can only be busy when it owns a non-empty partition,
        // so cap the pool at the busy-partition count and take the
        // sequential path outright when one worker would own everything —
        // zero barrier overhead at `threads == 1` or single-partition
        // plans.
        let busy_parts = (0..p)
            .filter(|&q| self.subnet(q).neuron_count() > 0)
            .count()
            .max(1);
        let workers = threads.clamp(1, busy_parts);
        if workers > 1 {
            return super::driver::run_threaded(
                self,
                config,
                obs,
                rec,
                states,
                channels,
                fired_global,
                tick_traffic,
                supersteps,
                workers,
            );
        }

        let mut last_active: Time = 0;
        while let Some(t) = next_superstep(&mut states) {
            if t > config.max_steps {
                break;
            }
            supersteps += 1;

            // Compute phase: every wheel is drained at every superstep —
            // including empty ones — so each partition clock stays equal
            // to the monolithic clock (horizon classification depends on
            // `now`).
            let mut batch_total = 0u64;
            let mut updates_total = 0u64;
            for (q, st) in states.iter_mut().enumerate() {
                let (b, u) = st.step(t, self.subnet(q).params_slice());
                batch_total += b;
                updates_total += u;
            }
            obs.on_spike_batch(t, batch_total);
            rec.add_updates(updates_total);

            fired_global.clear();
            for (q, st) in states.iter().enumerate() {
                let globals = self.globals(q);
                fired_global.extend(st.fired.iter().map(|&l| globals[l as usize]));
            }
            fired_global.sort_unstable();
            last_active = t;

            stop_hit = rec.record_step(t, &fired_global, &config.stop);
            let deliveries = self.exchange(t, &mut states, &channels, &mut tick_traffic, &mut rec);
            obs.on_step(
                t,
                StepRecord {
                    spikes: fired_global.len() as u64,
                    deliveries,
                    updates: updates_total,
                },
            );
            if O::ENABLED {
                obs.on_scheduler(t, aggregate_scheduler(&states));
            }
            emit_cut_traffic(obs, t, p, &mut tick_traffic);

            if stop_hit
                && !matches!(
                    config.stop,
                    StopCondition::MaxSteps | StopCondition::Quiescent
                )
            {
                let result = rec.finish(t, StopReason::ConditionMet, config)?;
                return Ok((result, self.traffic_stats(&channels, supersteps)));
            }
        }

        let result = if states.iter().all(|st| st.wheel.is_empty()) {
            rec.finish(last_active, StopReason::Quiescent, config)?
        } else {
            rec.finish(config.max_steps, StopReason::MaxStepsReached, config)?
        };
        Ok((result, self.traffic_stats(&channels, supersteps)))
    }

    /// The barrier: owners publish cut deliveries for this superstep's
    /// spikes, then every partition schedules everything addressed to it
    /// — own intra-partition routing merged with inbound channel streams
    /// by global source id (see the module docs for why this reproduces
    /// the monolithic scheduling order).
    fn exchange(
        &self,
        t: Time,
        states: &mut [PartState],
        channels: &[Option<SpikeChannel>],
        tick_traffic: &mut [u64],
        rec: &mut Recorder,
    ) -> u64 {
        for (q, st) in states.iter().enumerate() {
            publish_cut(self, q, &st.fired, channels, t);
        }
        let mut deliveries = 0u64;
        for (q, st) in states.iter_mut().enumerate() {
            deliveries += merge_schedule(self, q, st, channels, t, tick_traffic);
        }
        rec.add_deliveries(deliveries);
        deliveries
    }

    pub(super) fn traffic_stats(
        &self,
        channels: &[Option<SpikeChannel>],
        supersteps: u64,
    ) -> PartitionRunStats {
        let p = self.parts();
        let mut out = PartitionRunStats {
            parts: p,
            threads: 1,
            cut_edges: self.cut_edge_count(),
            supersteps,
            ..PartitionRunStats::default()
        };
        for from in 0..p {
            for to in 0..p {
                if let Some(ch) = channels[from * p + to].as_ref() {
                    let traffic = ChannelTraffic {
                        from: from as u32,
                        to: to as u32,
                        cut_edges: self.pair_cut(from, to),
                        messages: ch.messages(),
                        spilled: ch.spilled(),
                    };
                    out.cut_messages += traffic.messages;
                    out.spilled_messages += traffic.spilled;
                    out.channels.push(traffic);
                }
            }
        }
        out
    }
}

/// The publish half of the exchange for one partition: one [`SpikeEvent`]
/// per (fired source) × (cut synapse), pushed onto the destination's
/// channel. In the threaded driver this runs concurrently across
/// partitions — each channel still has exactly one producer (the owner of
/// `q`), so the SPSC ring contract holds, and within a channel the push
/// order is `q`'s fired order × CSR order, identical to the sequential
/// driver. A plan with an empty cut skips the scan entirely.
pub(super) fn publish_cut(
    plan: &PartitionPlan,
    q: usize,
    fired: &[u32],
    channels: &[Option<SpikeChannel>],
    t: Time,
) {
    if plan.cut_edge_count() == 0 {
        return;
    }
    let p = plan.parts();
    for &l in fired {
        let cuts = plan.cut_out(q, l as usize);
        if cuts.is_empty() {
            continue;
        }
        let src = plan.globals(q)[l as usize].0;
        for c in cuts {
            channels[q * p + c.part as usize]
                .as_ref()
                .expect("cut synapse implies a channel")
                .push(SpikeEvent {
                    src,
                    due: PartitionPlan::due(t, c),
                    target_local: c.target_local,
                    weight: c.weight,
                });
        }
    }
}

/// The schedule half of the exchange for one partition: drain every
/// inbound channel, then k-way merge the disjoint-source streams (own
/// intra-partition routing + one stream per peer) into the wheel by
/// global source id. Returns the deliveries scheduled; inbound message
/// counts accumulate into `tick_traffic[peer * parts + q]`.
pub(super) fn merge_schedule(
    plan: &PartitionPlan,
    q: usize,
    st: &mut PartState,
    channels: &[Option<SpikeChannel>],
    t: Time,
    tick_traffic: &mut [u64],
) -> u64 {
    let p = plan.parts();
    let csr = plan.subnet(q).csr();
    let globals = plan.globals(q);
    let PartState {
        wheel,
        fired,
        inbox,
        merge_idx,
        ..
    } = st;

    let mut deliveries = 0u64;
    let mut inbound = 0usize;
    for peer in 0..p {
        inbox[peer].clear();
        merge_idx[peer] = 0;
        if peer == q {
            continue;
        }
        if let Some(ch) = channels[peer * p + q].as_ref() {
            let got = ch.drain_into(&mut inbox[peer]);
            tick_traffic[peer * p + q] += got as u64;
            inbound += got;
        }
    }

    // Nothing inbound (always true at one partition, and the common case
    // on quiet boundaries): own-fired is the only stream, already in
    // ascending global order — route it directly, skipping the per-source
    // merge scan.
    if inbound == 0 {
        for &l in fired.iter() {
            for s in csr.out(l as usize) {
                wheel.schedule(t + Time::from(s.delay), s.target, s.weight);
                deliveries += 1;
            }
        }
        return deliveries;
    }

    let mut own_i = 0usize;
    loop {
        // Lowest next global source across own fired + inboxes.
        let mut best_src = u32::MAX;
        let mut best_stream = p; // p = the own-fired stream
        let mut found = false;
        if own_i < fired.len() {
            best_src = globals[fired[own_i] as usize].0;
            found = true;
        }
        for peer in 0..p {
            if let Some(ev) = inbox[peer].get(merge_idx[peer]) {
                if !found || ev.src < best_src {
                    best_src = ev.src;
                    best_stream = peer;
                    found = true;
                }
            }
        }
        if !found {
            break;
        }
        if best_stream == p {
            let l = fired[own_i] as usize;
            own_i += 1;
            for s in csr.out(l) {
                wheel.schedule(t + Time::from(s.delay), s.target, s.weight);
                deliveries += 1;
            }
        } else {
            // Consume the whole same-source group (events arrive grouped
            // by source, in CSR order within a group).
            while let Some(ev) = inbox[best_stream].get(merge_idx[best_stream]) {
                if ev.src != best_src {
                    break;
                }
                wheel.schedule(ev.due, NeuronId(ev.target_local), ev.weight);
                deliveries += 1;
                merge_idx[best_stream] += 1;
            }
        }
    }
    deliveries
}

/// Reports this superstep's per-channel traffic to the observer and
/// resets the per-tick counters.
pub(super) fn emit_cut_traffic<O: RunObserver>(
    obs: &mut O,
    t: Time,
    p: usize,
    tick_traffic: &mut [u64],
) {
    if O::ENABLED {
        for from in 0..p {
            for to in 0..p {
                let v = tick_traffic[from * p + to];
                if v > 0 {
                    obs.on_cut_traffic(t, from as u32, to as u32, v);
                }
            }
        }
    }
    tick_traffic.fill(0);
}

/// The partitioned execution engine: compiles an edge-cut
/// [`PartitionPlan`] and drives it with bulk-synchronous supersteps.
///
/// Bit-identical to [`crate::engine::EventEngine`] (including work
/// counters) under any partition count and strategy. For repeated runs
/// over one network, compile the plan once via [`Self::compile`] and call
/// [`PartitionPlan::run`] directly.
#[derive(Clone, Copy, Debug)]
pub struct PartitionedEngine {
    /// Number of partitions (>= 1; empty partitions are allowed).
    pub parts: usize,
    /// Edge-cut strategy used at compile time.
    pub strategy: CutStrategy,
    /// Worker threads driving the supersteps (1 = sequential driver; more
    /// engages the threaded BSP driver, capped at the busy-partition
    /// count).
    pub threads: usize,
}

impl PartitionedEngine {
    /// An engine with `parts` partitions, the default cut strategy, and
    /// the sequential driver.
    #[must_use]
    pub fn new(parts: usize) -> Self {
        Self {
            parts,
            strategy: CutStrategy::default(),
            threads: 1,
        }
    }

    /// Overrides the edge-cut strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: CutStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the worker-thread count for the superstep driver. `0` and `1`
    /// both mean the sequential driver.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Compiles `net` into a reusable [`PartitionPlan`].
    ///
    /// # Errors
    /// Fails when the network is invalid for event-style execution.
    pub fn compile(&self, net: &Network) -> Result<PartitionPlan, SnnError> {
        PartitionPlan::compile(net, self.parts, self.strategy.partitioner())
    }

    /// [`Engine::run`] with telemetry hooks; see
    /// [`PartitionPlan::run_observed`].
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_observed<O: RunObserver>(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
        obs: &mut O,
    ) -> Result<RunResult, SnnError> {
        self.compile(net)?
            .run_observed_threaded(initial_spikes, config, self.threads, obs)
            .map(|(result, _)| result)
    }

    /// One-shot compile + run returning the cut-traffic counters.
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`].
    pub fn run_with_stats(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<(RunResult, PartitionRunStats), SnnError> {
        self.compile(net)?
            .run_with_stats_threaded(initial_spikes, config, self.threads)
    }
}

impl Engine for PartitionedEngine {
    fn run(
        &self,
        net: &Network,
        initial_spikes: &[NeuronId],
        config: &RunConfig,
    ) -> Result<RunResult, SnnError> {
        self.run_observed(net, initial_spikes, config, &mut NullObserver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventEngine;
    use crate::params::LifParams;

    fn chain(n: usize, delay: u32) -> Network {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), n);
        for w in ids.windows(2) {
            net.connect(w[0], w[1], 1.0, delay).unwrap();
        }
        net
    }

    #[test]
    fn matches_event_engine_on_a_chain() {
        let net = chain(10, 3);
        let cfg = RunConfig::until_quiescent(100);
        let mono = EventEngine.run(&net, &[NeuronId(0)], &cfg).unwrap();
        for parts in [1, 2, 4, 8] {
            let part = PartitionedEngine::new(parts)
                .run(&net, &[NeuronId(0)], &cfg)
                .unwrap();
            assert_eq!(mono, part, "parts = {parts}");
        }
    }

    #[test]
    fn cut_traffic_counts_boundary_deliveries() {
        // 4-chain split in half: one cut edge, crossed once.
        let net = chain(4, 1);
        let (result, stats) = PartitionedEngine::new(2)
            .with_strategy(CutStrategy::Range)
            .run_with_stats(&net, &[NeuronId(0)], &RunConfig::until_quiescent(10))
            .unwrap();
        assert_eq!(result.stats.spike_events, 4);
        assert_eq!(stats.parts, 2);
        assert_eq!(stats.cut_edges, 1);
        assert_eq!(stats.cut_messages, 1);
        assert_eq!(stats.spilled_messages, 0);
        assert_eq!(stats.channels.len(), 1);
        assert_eq!(stats.channels[0].from, 0);
        assert_eq!(stats.channels[0].to, 1);
        assert_eq!(stats.channels[0].messages, 1);
    }

    #[test]
    fn terminal_stop_works_across_a_cut() {
        let net = {
            let mut net = chain(6, 2);
            net.set_terminal(NeuronId(5));
            net
        };
        let cfg = RunConfig::until_terminal(100);
        let mono = EventEngine.run(&net, &[NeuronId(0)], &cfg).unwrap();
        let part = PartitionedEngine::new(3)
            .run(&net, &[NeuronId(0)], &cfg)
            .unwrap();
        assert_eq!(mono, part);
        assert_eq!(part.reason, StopReason::ConditionMet);
    }

    #[test]
    fn more_parts_than_neurons_runs_with_empty_partitions() {
        let net = chain(3, 1);
        let cfg = RunConfig::until_quiescent(10);
        let mono = EventEngine.run(&net, &[NeuronId(0)], &cfg).unwrap();
        let (part, stats) = PartitionedEngine::new(8)
            .run_with_stats(&net, &[NeuronId(0)], &cfg)
            .unwrap();
        assert_eq!(mono, part);
        assert_eq!(stats.parts, 8);
    }

    #[test]
    fn unknown_initial_neuron_is_rejected() {
        let net = chain(3, 1);
        assert!(matches!(
            PartitionedEngine::new(2).run(&net, &[NeuronId(9)], &RunConfig::fixed(5)),
            Err(SnnError::UnknownNeuron(NeuronId(9)))
        ));
    }
}

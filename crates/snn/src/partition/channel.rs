//! Inter-partition spike channels: bounded SPSC rings with a spill list.
//!
//! One channel exists per ordered partition pair `(from, to)` with at
//! least one cut synapse. The owner of a firing source pushes one
//! [`SpikeEvent`] per cut synapse during the compute phase; the receiving
//! partition drains the channel during the exchange phase of the same
//! bulk-synchronous superstep. The ring follows the `serve::ring`
//! handoff pattern — a fixed slot array with monotone atomic head/tail
//! cursors and one uncontended `Mutex<Option<T>>` per slot (this crate
//! forbids `unsafe`, and the lock is only ever taken by the one producer
//! or the one consumer).
//!
//! Unlike the serve ring, a full push must not drop work: spikes that
//! miss the ring land in a spill list. Within one superstep the consumer
//! never drains concurrently with pushes, so once the ring fills it
//! *stays* full for the rest of the compute phase — every later event of
//! the tick takes the spill path, and draining ring-then-spill preserves
//! exact push order. That ordering is what keeps the receiver's k-way
//! merge (and therefore floating-point accumulation order) bit-identical
//! to a monolithic run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::types::Time;

/// One boundary-synapse delivery in flight between partitions.
///
/// `src` is the *global* id of the firing neuron: the receiver merges
/// inbound channel streams with its own intra-partition routing by global
/// source id, which reproduces the monolithic engines' (sorted firing id)
/// × (CSR synapse order) scheduling order exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpikeEvent {
    /// Global id of the neuron that fired.
    pub src: u32,
    /// Absolute arrival tick (`firing tick + synapse delay`).
    pub due: Time,
    /// Target neuron, as a local id in the *destination* partition.
    pub target_local: u32,
    /// Synaptic weight delivered on arrival.
    pub weight: f64,
}

/// Smallest ring allocated per channel, even for single-edge cuts.
const MIN_RING_CAPACITY: usize = 16;

/// Largest ring allocated per channel; wider cuts spill past this.
const MAX_RING_CAPACITY: usize = 16_384;

/// Ring capacity for a channel carrying `pair_cut_edges` boundary
/// synapses. A source fires at most once per tick, so per-tick traffic is
/// bounded by the static cut size; sizing to it (within bounds) makes the
/// spill path cold for all but extreme all-cut topologies.
pub(crate) fn ring_capacity(pair_cut_edges: u64) -> usize {
    (pair_cut_edges as usize).clamp(MIN_RING_CAPACITY, MAX_RING_CAPACITY)
}

/// Heap bytes one ring slot costs, for plan memory accounting.
pub(crate) fn slot_bytes() -> usize {
    std::mem::size_of::<Mutex<Option<SpikeEvent>>>()
}

/// A bounded single-producer single-consumer spike channel between one
/// ordered pair of partitions, with lossless spill on overflow.
#[derive(Debug)]
pub struct SpikeChannel {
    slots: Vec<Mutex<Option<SpikeEvent>>>,
    /// Next slot the producer writes (monotone; slot = index % capacity).
    tail: AtomicUsize,
    /// Next slot the consumer reads (monotone).
    head: AtomicUsize,
    /// Events that arrived while the ring was full, in push order.
    spill: Mutex<Vec<SpikeEvent>>,
    /// Cumulative events pushed over the channel's lifetime.
    messages: AtomicU64,
    /// Cumulative events that took the spill path.
    spilled: AtomicU64,
}

impl SpikeChannel {
    /// A channel whose ring holds at most `capacity` in-flight events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            spill: Mutex::new(Vec::new()),
            messages: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
        }
    }

    /// Producer side: enqueues `ev` for the receiving partition. Never
    /// loses work — a full ring diverts to the spill list.
    ///
    /// # Panics
    /// Panics if a slot or spill lock is poisoned.
    pub fn push(&self, ev: SpikeEvent) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            self.spilled.fetch_add(1, Ordering::Relaxed);
            self.spill.lock().expect("channel spill").push(ev);
            return;
        }
        *self.slots[tail % self.slots.len()]
            .lock()
            .expect("channel slot") = Some(ev);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: appends every in-flight event to `out` in push
    /// order (ring first, then spill — see the module docs for why that
    /// is push order) and returns how many arrived.
    ///
    /// # Panics
    /// Panics if a slot or spill lock is poisoned.
    pub fn drain_into(&self, out: &mut Vec<SpikeEvent>) -> usize {
        let before = out.len();
        loop {
            let head = self.head.load(Ordering::Relaxed);
            let tail = self.tail.load(Ordering::Acquire);
            if head == tail {
                break;
            }
            let ev = self.slots[head % self.slots.len()]
                .lock()
                .expect("channel slot")
                .take();
            self.head.store(head.wrapping_add(1), Ordering::Release);
            out.extend(ev);
        }
        out.append(&mut self.spill.lock().expect("channel spill"));
        out.len() - before
    }

    /// Whether no events are in flight.
    ///
    /// # Panics
    /// Panics if the spill lock is poisoned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let pending = self
            .tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire));
        pending == 0 && self.spill.lock().expect("channel spill").is_empty()
    }

    /// Cumulative events pushed over the channel's lifetime.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Cumulative events that missed the ring and took the spill path.
    #[must_use]
    pub fn spilled(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// Ring slot count (the bounded part of the channel).
    #[must_use]
    pub fn ring_capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, due: Time) -> SpikeEvent {
        SpikeEvent {
            src,
            due,
            target_local: src,
            weight: 1.0,
        }
    }

    #[test]
    fn drains_in_push_order() {
        let ch = SpikeChannel::new(4);
        for i in 0..4 {
            ch.push(ev(i, 1));
        }
        let mut out = Vec::new();
        assert_eq!(ch.drain_into(&mut out), 4);
        let srcs: Vec<u32> = out.iter().map(|e| e.src).collect();
        assert_eq!(srcs, vec![0, 1, 2, 3]);
        assert!(ch.is_empty());
        assert_eq!(ch.messages(), 4);
        assert_eq!(ch.spilled(), 0);
    }

    #[test]
    fn overflow_spills_losslessly_and_keeps_order() {
        let ch = SpikeChannel::new(2);
        for i in 0..7 {
            ch.push(ev(i, 1));
        }
        assert_eq!(ch.spilled(), 5);
        let mut out = Vec::new();
        assert_eq!(ch.drain_into(&mut out), 7);
        let srcs: Vec<u32> = out.iter().map(|e| e.src).collect();
        assert_eq!(srcs, (0..7).collect::<Vec<_>>());
        assert!(ch.is_empty());
        // Slots recycle after a drain.
        ch.push(ev(9, 2));
        out.clear();
        assert_eq!(ch.drain_into(&mut out), 1);
        assert_eq!(out[0].src, 9);
        assert_eq!(ch.messages(), 8);
    }

    #[test]
    fn capacity_policy_tracks_cut_width_within_bounds() {
        assert_eq!(ring_capacity(0), MIN_RING_CAPACITY);
        assert_eq!(ring_capacity(100), 100);
        assert_eq!(ring_capacity(1 << 30), MAX_RING_CAPACITY);
    }
}

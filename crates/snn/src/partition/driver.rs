//! The threaded BSP driver: a persistent worker pool over a
//! [`PartitionPlan`].
//!
//! Each worker owns a fixed set of partitions (round-robin by partition
//! index, so range-partitioned load spreads evenly) and the coordinator
//! — the calling thread — owns the [`Recorder`] and every observer hook.
//! One superstep crosses a single reusable [`SpinBarrier`] three times:
//!
//! 1. **open** — the coordinator publishes the superstep time; workers
//!    run the compute phase for their partitions and push cut spikes
//!    onto the SPSC channel rings. Each channel has exactly one producer
//!    (the owner of its source partition) and pushes happen strictly
//!    before the next crossing, so the ring contract holds untouched.
//! 2. **publish** — every push is now visible; workers run the merge
//!    phase (drain inbound channels, k-way merge into their wheels) and
//!    write their per-superstep outputs into their [`WorkerOut`] cell.
//! 3. **close** — outputs are visible; the coordinator replays the exact
//!    sequential bookkeeping sequence (spike-batch hook, update counter,
//!    globally sorted fired list, step record, delivery counter, step /
//!    scheduler / cut-traffic hooks, stop check) from the cell contents.
//!
//! Why the numbers cannot change: partitions are computed and merged by
//! exactly the code the sequential driver uses ([`PartState::step`],
//! [`merge_schedule`]), only grouped by owner instead of by index; every
//! cross-partition value the coordinator folds (batch, update, delivery
//! counts, scheduler occupancy) is a sum of `u64`s, which is
//! order-insensitive; the fired list is re-sorted globally, erasing
//! concatenation order; and per-target f64 accumulation order lives
//! entirely inside the per-partition merge, which is untouched. The
//! barriers provide the happens-before edges (release on `generation`,
//! acquire in `wait`), so no data race can reorder any of it.
//!
//! The cells are `Mutex`-wrapped only to satisfy `Sync` under this
//! crate's `#![forbid(unsafe_code)]`: a cell is written by its worker
//! between crossings 2 and 3 and read by the coordinator after crossing
//! 3, so the locks are never contended — the same pattern as the
//! parallel dense engine's mailboxes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sgl_observe::{RunObserver, SchedulerStats, StepRecord};

use crate::engine::sync::SpinBarrier;
use crate::engine::{Recorder, RunConfig, RunResult, StopCondition, StopReason};
use crate::error::SnnError;
use crate::types::{NeuronId, Time};

use super::channel::SpikeChannel;
use super::engine::{
    aggregate_scheduler, emit_cut_traffic, merge_schedule, publish_cut, PartState,
    PartitionRunStats, WorkerStats,
};
use super::plan::PartitionPlan;

/// Per-superstep outputs of one worker, read by the coordinator after
/// the close crossing.
struct WorkerOut {
    /// Global ids fired by this worker's partitions (concatenated in
    /// owned-partition order; the coordinator re-sorts globally).
    fired: Vec<NeuronId>,
    /// Sum of wheel-drain batch lengths across owned partitions.
    batch: u64,
    /// Sum of neuron updates across owned partitions.
    updates: u64,
    /// Deliveries scheduled by the merge phase across owned partitions.
    deliveries: u64,
    /// Earliest pending delivery across owned wheels after the merge.
    next_time: Option<Time>,
    /// Whether every owned wheel is empty after the merge.
    wheels_empty: bool,
    /// Scheduler occupancy summed over owned wheels (observed runs only).
    sched: SchedulerStats,
    /// Inbound message counts, `tick_traffic[from * parts + to]` for the
    /// destinations this worker owns (disjoint across workers).
    tick_traffic: Vec<u64>,
    /// Nanoseconds in compute + merge this superstep.
    busy_ns: u64,
    /// Nanoseconds blocked at barriers since the previous report.
    wait_ns: u64,
}

/// The coordinator half of the threaded driver. Entered from
/// [`PartitionPlan`]'s `run_core` after the `t = 0` superstep ran
/// sequentially (injection is cheap and touches every partition's wheel,
/// so threading it buys nothing) with `workers >= 2` already decided.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_threaded<O: RunObserver>(
    plan: &PartitionPlan,
    config: &RunConfig,
    obs: &mut O,
    mut rec: Recorder,
    mut states: Vec<PartState>,
    channels: Vec<Option<SpikeChannel>>,
    mut fired_global: Vec<NeuronId>,
    mut tick_traffic: Vec<u64>,
    mut supersteps: u64,
    workers: usize,
) -> Result<(RunResult, PartitionRunStats), SnnError> {
    let p = plan.parts();

    // Resolve the first superstep before the states move to the workers;
    // a run that is already quiescent (or out of budget) never spawns.
    let first = super::engine::next_superstep(&mut states);
    let needs_pool = match first {
        Some(t) => t <= config.max_steps,
        None => false,
    };
    if !needs_pool {
        let result = if states.iter().all(|st| st.wheel.is_empty()) {
            rec.finish(0, StopReason::Quiescent, config)?
        } else {
            rec.finish(config.max_steps, StopReason::MaxStepsReached, config)?
        };
        let mut stats = plan.traffic_stats(&channels, supersteps);
        stats.threads = workers;
        return Ok((result, stats));
    }

    // Round-robin ownership: partition q belongs to worker q % workers.
    let mut owned: Vec<Vec<(usize, PartState)>> = (0..workers).map(|_| Vec::new()).collect();
    for (q, st) in states.into_iter().enumerate() {
        owned[q % workers].push((q, st));
    }

    let cells: Vec<Mutex<WorkerOut>> = owned
        .iter()
        .map(|_| {
            Mutex::new(WorkerOut {
                fired: Vec::new(),
                batch: 0,
                updates: 0,
                deliveries: 0,
                next_time: None,
                wheels_empty: true,
                sched: SchedulerStats::default(),
                tick_traffic: vec![0u64; p * p],
                busy_ns: 0,
                wait_ns: 0,
            })
        })
        .collect();
    let mut wstats: Vec<WorkerStats> = owned
        .iter()
        .enumerate()
        .map(|(w, o)| WorkerStats {
            worker: w as u32,
            partitions: o.len() as u32,
            busy_ns: 0,
            barrier_wait_ns: 0,
        })
        .collect();

    let barrier = SpinBarrier::new(workers + 1);
    let cur_t = AtomicU64::new(0);
    let running = AtomicBool::new(true);
    let mut imbalance_max = 0.0f64;
    let mut imbalance_sum = 0.0f64;
    let mut imbalance_n = 0u64;

    let outcome = std::thread::scope(|scope| {
        for (mine, cell) in owned.into_iter().zip(&cells) {
            let (barrier, cur_t, running) = (&barrier, &cur_t, &running);
            let channels = channels.as_slice();
            scope.spawn(move || {
                worker_loop::<O>(plan, channels, mine, cell, barrier, cur_t, running)
            });
        }

        let mut pending = first;
        let mut all_empty = false;
        let mut last_active: Time = 0;
        let run = 'run: {
            loop {
                let Some(t) = pending else {
                    break 'run None;
                };
                if t > config.max_steps {
                    all_empty = false;
                    break 'run None;
                }
                supersteps += 1;
                cur_t.store(t, Ordering::Release);
                let block0 = Instant::now();
                barrier.wait(); // open: workers compute + publish
                barrier.wait(); // publish: all cut pushes visible
                barrier.wait(); // close: worker outputs visible
                let coord_block_ns = block0.elapsed().as_nanos() as u64;

                // Fold the cells, then replay the sequential driver's
                // exact bookkeeping and hook order.
                fired_global.clear();
                let mut batch_total = 0u64;
                let mut updates_total = 0u64;
                let mut deliveries = 0u64;
                let mut sched = SchedulerStats::default();
                let mut busy_max = 0u64;
                let mut busy_sum = 0u64;
                pending = None;
                all_empty = true;
                for (w, cell) in cells.iter().enumerate() {
                    let out = cell.lock().expect("worker cell poisoned");
                    fired_global.extend_from_slice(&out.fired);
                    batch_total += out.batch;
                    updates_total += out.updates;
                    deliveries += out.deliveries;
                    if let Some(nt) = out.next_time {
                        pending = Some(pending.map_or(nt, |b: Time| b.min(nt)));
                    }
                    all_empty &= out.wheels_empty;
                    wstats[w].busy_ns += out.busy_ns;
                    wstats[w].barrier_wait_ns += out.wait_ns;
                    busy_max = busy_max.max(out.busy_ns);
                    busy_sum += out.busy_ns;
                    if O::ENABLED {
                        sched.in_flight += out.sched.in_flight;
                        sched.occupied_slots += out.sched.occupied_slots;
                        sched.overflow_entries += out.sched.overflow_entries;
                        sched.overflow_hits += out.sched.overflow_hits;
                        for (acc, &v) in tick_traffic.iter_mut().zip(&out.tick_traffic) {
                            *acc += v;
                        }
                        obs.on_worker_superstep(t, w as u32, out.busy_ns, out.wait_ns);
                    }
                }
                fired_global.sort_unstable();
                let mean_busy = busy_sum / workers as u64;
                if busy_sum > 0 {
                    let ratio = busy_max as f64 * workers as f64 / busy_sum as f64;
                    imbalance_max = imbalance_max.max(ratio);
                    imbalance_sum += ratio;
                    imbalance_n += 1;
                }

                obs.on_spike_batch(t, batch_total);
                rec.add_updates(updates_total);
                last_active = t;
                let stop_hit = rec.record_step(t, &fired_global, &config.stop);
                rec.add_deliveries(deliveries);
                obs.on_step(
                    t,
                    StepRecord {
                        spikes: fired_global.len() as u64,
                        deliveries,
                        updates: updates_total,
                    },
                );
                if O::ENABLED {
                    obs.on_scheduler(t, sched);
                    obs.on_barrier_wait(t, coord_block_ns);
                    if busy_sum > 0 {
                        obs.on_superstep_imbalance(t, busy_max, mean_busy);
                    }
                }
                emit_cut_traffic(obs, t, p, &mut tick_traffic);

                if stop_hit
                    && !matches!(
                        config.stop,
                        StopCondition::MaxSteps | StopCondition::Quiescent
                    )
                {
                    break 'run Some(t);
                }
            }
        };

        // Release the pool: workers exit at the next open crossing.
        running.store(false, Ordering::Release);
        barrier.wait();
        (run, all_empty, last_active)
    });

    let (condition_met_at, all_empty, last_active) = outcome;
    let result = match condition_met_at {
        Some(t) => rec.finish(t, StopReason::ConditionMet, config)?,
        None if all_empty => rec.finish(last_active, StopReason::Quiescent, config)?,
        None => rec.finish(config.max_steps, StopReason::MaxStepsReached, config)?,
    };
    let mut stats = plan.traffic_stats(&channels, supersteps);
    stats.threads = workers;
    stats.workers = wstats;
    stats.imbalance_max = imbalance_max;
    stats.imbalance_mean = if imbalance_n > 0 {
        imbalance_sum / imbalance_n as f64
    } else {
        0.0
    };
    Ok((result, stats))
}

/// One persistent worker: compute + publish for its partitions, meet at
/// the publish crossing, merge + report, meet at the close crossing.
fn worker_loop<O: RunObserver>(
    plan: &PartitionPlan,
    channels: &[Option<SpikeChannel>],
    mut mine: Vec<(usize, PartState)>,
    cell: &Mutex<WorkerOut>,
    barrier: &SpinBarrier,
    cur_t: &AtomicU64,
    running: &AtomicBool,
) {
    // Barrier time spent after the cell report (the close crossing) is
    // carried into the next superstep's figure so nothing is dropped.
    let mut carry = Duration::ZERO;
    loop {
        let w0 = Instant::now();
        barrier.wait(); // open
        let mut waited = carry + w0.elapsed();
        if !running.load(Ordering::Acquire) {
            return;
        }
        let t = cur_t.load(Ordering::Acquire);

        let b0 = Instant::now();
        let mut batch = 0u64;
        let mut updates = 0u64;
        for (q, st) in mine.iter_mut() {
            let (b, u) = st.step(t, plan.subnet(*q).params_slice());
            batch += b;
            updates += u;
            publish_cut(plan, *q, &st.fired, channels, t);
        }
        let busy_compute = b0.elapsed();

        let w1 = Instant::now();
        barrier.wait(); // publish
        waited += w1.elapsed();

        let b1 = Instant::now();
        let mut out = cell.lock().expect("worker cell poisoned");
        out.fired.clear();
        out.tick_traffic.fill(0);
        out.batch = batch;
        out.updates = updates;
        let mut deliveries = 0u64;
        let mut next_time: Option<Time> = None;
        let mut wheels_empty = true;
        for (q, st) in mine.iter_mut() {
            deliveries += merge_schedule(plan, *q, st, channels, t, &mut out.tick_traffic);
            let globals = plan.globals(*q);
            out.fired
                .extend(st.fired.iter().map(|&l| globals[l as usize]));
            if let Some(nt) = st.wheel.next_time() {
                next_time = Some(next_time.map_or(nt, |b| b.min(nt)));
            }
            wheels_empty &= st.wheel.is_empty();
        }
        out.deliveries = deliveries;
        out.next_time = next_time;
        out.wheels_empty = wheels_empty;
        if O::ENABLED {
            out.sched = aggregate_scheduler(mine.iter().map(|(_, st)| st));
        }
        out.busy_ns = (busy_compute + b1.elapsed()).as_nanos() as u64;
        out.wait_ns = waited.as_nanos() as u64;
        drop(out);

        let w2 = Instant::now();
        barrier.wait(); // close
        carry = w2.elapsed();
    }
}

//! Edge-cut partitioners: assign every neuron to one of `parts` regions.
//!
//! The quality of an assignment is the number of synapses whose endpoints
//! land in different regions (the *cut*): cut synapses become channel
//! traffic every time their source fires, so a smaller cut is cheaper.
//! Correctness never depends on the assignment — the partitioned engine
//! is bit-identical to a monolithic run under *any* valid assignment —
//! which is what makes the strategy pluggable.

use std::collections::VecDeque;

use crate::network::Network;

/// A strategy for assigning neurons to partitions.
pub trait Partitioner {
    /// Maps each neuron (by dense id) to a partition in `0..parts`.
    ///
    /// Must return exactly `net.neuron_count()` entries, each `< parts`
    /// (checked by [`super::PartitionPlan::compile`]). Partitions may be
    /// empty. Implementations must be deterministic: the same network and
    /// `parts` must always produce the same assignment.
    fn assign(&self, net: &Network, parts: usize) -> Vec<u32>;
}

/// Built-in edge-cut strategies, for callers that pick by name (e.g.
/// `EngineChoice::Partitioned`) rather than supplying a [`Partitioner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CutStrategy {
    /// [`BfsGrowPartitioner`]: greedy BFS-grown regions.
    #[default]
    BfsGrow,
    /// [`RangePartitioner`]: contiguous id ranges.
    Range,
}

impl CutStrategy {
    /// The partitioner implementing this strategy.
    #[must_use]
    pub fn partitioner(self) -> &'static dyn Partitioner {
        match self {
            Self::BfsGrow => &BfsGrowPartitioner,
            Self::Range => &RangePartitioner,
        }
    }
}

/// Contiguous id-range partitioning: neuron `i` goes to `i / ceil(n/parts)`.
///
/// Zero-cost to compute and a surprisingly good cut for builder-order
/// locality (e.g. layered graphs built layer by layer). The baseline every
/// smarter strategy must beat.
#[derive(Clone, Copy, Debug, Default)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn assign(&self, net: &Network, parts: usize) -> Vec<u32> {
        let n = net.neuron_count();
        let parts = parts.max(1);
        let chunk = n.div_ceil(parts).max(1);
        (0..n)
            .map(|i| ((i / chunk) as u32).min(parts as u32 - 1))
            .collect()
    }
}

/// Greedy BFS-grown regions over the undirected view of the synapse graph.
///
/// Seeds each region at the lowest-id unassigned neuron and grows it
/// breadth-first (out- and in-neighbours alike) until the region reaches
/// `ceil(n/parts)` neurons, then starts the next region. Connected
/// neighbourhoods tend to land in one region, so cuts follow sparse
/// frontiers instead of slicing through dense cores. Deterministic:
/// expansion order is (BFS queue order) × (CSR synapse order).
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsGrowPartitioner;

impl Partitioner for BfsGrowPartitioner {
    fn assign(&self, net: &Network, parts: usize) -> Vec<u32> {
        let n = net.neuron_count();
        let parts = parts.max(1);
        if n == 0 {
            return Vec::new();
        }
        let csr = net.csr();

        // In-neighbour lists (counting sort), for undirected growth.
        let m = csr.all().len();
        let mut in_off = vec![0usize; n + 1];
        for s in csr.all() {
            in_off[s.target.index() + 1] += 1;
        }
        for i in 0..n {
            in_off[i + 1] += in_off[i];
        }
        let mut in_adj = vec![0u32; m];
        let mut cursor: Vec<usize> = in_off[..n].to_vec();
        for u in 0..n {
            for s in csr.out(u) {
                let t = s.target.index();
                in_adj[cursor[t]] = u as u32;
                cursor[t] += 1;
            }
        }

        let target = n.div_ceil(parts);
        let mut assignment = vec![u32::MAX; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut seed_cursor = 0usize;
        let mut part = 0u32;
        let mut region = 0usize;
        let mut assigned = 0usize;
        while assigned < n {
            // Close a full region (the last region absorbs any remainder).
            if region >= target && (part as usize) + 1 < parts {
                part += 1;
                region = 0;
                queue.clear();
            }
            let u = if let Some(u) = queue.pop_front() {
                u
            } else {
                // Frontier exhausted (or region just closed): seed at the
                // lowest-id unassigned neuron.
                while assignment[seed_cursor] != u32::MAX {
                    seed_cursor += 1;
                }
                assignment[seed_cursor] = part;
                assigned += 1;
                region += 1;
                seed_cursor
            };
            for s in csr.out(u) {
                if region >= target && (part as usize) + 1 < parts {
                    break;
                }
                let v = s.target.index();
                if assignment[v] == u32::MAX {
                    assignment[v] = part;
                    assigned += 1;
                    region += 1;
                    queue.push_back(v);
                }
            }
            for &v in &in_adj[in_off[u]..in_off[u + 1]] {
                if region >= target && (part as usize) + 1 < parts {
                    break;
                }
                let v = v as usize;
                if assignment[v] == u32::MAX {
                    assignment[v] = part;
                    assigned += 1;
                    region += 1;
                    queue.push_back(v);
                }
            }
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    fn chain(n: usize) -> Network {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), n);
        for w in ids.windows(2) {
            net.connect(w[0], w[1], 1.0, 1).unwrap();
        }
        net
    }

    #[test]
    fn range_covers_all_parts_evenly() {
        let net = chain(10);
        let a = RangePartitioner.assign(&net, 4);
        assert_eq!(a.len(), 10);
        assert_eq!(a, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn range_with_more_parts_than_neurons_leaves_tail_empty() {
        let net = chain(3);
        let a = RangePartitioner.assign(&net, 8);
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn bfs_grow_assigns_every_neuron_in_range() {
        let net = chain(17);
        for parts in [1, 2, 4, 8] {
            let a = BfsGrowPartitioner.assign(&net, parts);
            assert_eq!(a.len(), 17);
            assert!(a.iter().all(|&p| (p as usize) < parts));
            // Balanced to the ceiling.
            let mut sizes = vec![0usize; parts];
            for &p in &a {
                sizes[p as usize] += 1;
            }
            assert!(sizes.iter().all(|&s| s <= 17usize.div_ceil(parts)));
        }
    }

    #[test]
    fn bfs_grow_keeps_chain_regions_contiguous() {
        // On a chain, BFS growth from the lowest id must produce the
        // minimal (parts - 1)-edge cut: contiguous blocks.
        let net = chain(16);
        let a = BfsGrowPartitioner.assign(&net, 4);
        let mut cut = 0;
        for u in 0..16 {
            for s in net.csr().out(u) {
                if a[u] != a[s.target.index()] {
                    cut += 1;
                }
            }
        }
        assert_eq!(cut, 3);
    }

    #[test]
    fn bfs_grow_handles_disconnected_components() {
        // Two disjoint chains: seeding must hop to the second component.
        let mut net = Network::new();
        let a = net.add_neurons(LifParams::gate_at_least(1), 4);
        let b = net.add_neurons(LifParams::gate_at_least(1), 4);
        net.connect(a[0], a[1], 1.0, 1).unwrap();
        net.connect(b[2], b[3], 1.0, 1).unwrap();
        let asg = BfsGrowPartitioner.assign(&net, 2);
        assert_eq!(asg.len(), 8);
        assert!(asg.iter().all(|&p| p < 2));
        assert_eq!(asg.iter().filter(|&&p| p == 0).count(), 4);
    }

    #[test]
    fn partitioners_are_deterministic() {
        let net = chain(31);
        assert_eq!(
            BfsGrowPartitioner.assign(&net, 4),
            BfsGrowPartitioner.assign(&net, 4)
        );
        assert_eq!(
            RangePartitioner.assign(&net, 4),
            RangePartitioner.assign(&net, 4)
        );
    }
}

//! Structural lints for networks: catch wiring mistakes before running.
//!
//! Circuit construction bugs usually manifest as silent wrong answers
//! (a gate that can never fire, an input that reaches nothing). The
//! auditor walks the network once and reports conditions that are legal
//! under the model but almost always unintended.

use crate::network::Network;
use crate::types::NeuronId;

/// One audit finding.
#[derive(Clone, Debug, PartialEq)]
pub enum Finding {
    /// `v_reset > v_threshold`: fires forever without input (rejected by
    /// the event engine).
    Spontaneous(NeuronId),
    /// The neuron's threshold exceeds the sum of all positive incoming
    /// weights — it can never fire (unless it is an input).
    Unfirable(NeuronId),
    /// No incoming synapses and not an input — permanently silent.
    Orphan(NeuronId),
    /// No outgoing synapses and not an output/terminal — its spikes go
    /// nowhere.
    DeadEnd(NeuronId),
    /// A synapse with weight exactly 0 — contributes nothing.
    ZeroWeight {
        /// Source neuron.
        src: NeuronId,
        /// Target neuron.
        dst: NeuronId,
    },
    /// Unreachable along synapses from every marked input and every
    /// spontaneous neuron — no run seeded at the inputs can ever deliver
    /// it a spike, so no observer will ever see it. (Skipped entirely when
    /// the network marks no inputs and has no spontaneous neurons: the
    /// entry points are unknown.)
    NeverObserved(NeuronId),
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spontaneous(n) => write!(f, "{n}: v_reset > v_threshold (fires forever)"),
            Self::Unfirable(n) => write!(f, "{n}: threshold exceeds total positive input"),
            Self::Orphan(n) => write!(f, "{n}: no inputs and not an input neuron"),
            Self::DeadEnd(n) => write!(f, "{n}: no outputs and not an output/terminal"),
            Self::ZeroWeight { src, dst } => write!(f, "{src} -> {dst}: zero-weight synapse"),
            Self::NeverObserved(n) => {
                write!(f, "{n}: unreachable from every input/spontaneous neuron")
            }
        }
    }
}

/// Audits `net`, returning all findings (empty = clean).
#[must_use]
pub fn audit(net: &Network) -> Vec<Finding> {
    let n = net.neuron_count();
    let mut positive_in = vec![0.0f64; n];
    let mut has_in = vec![false; n];
    let mut findings = Vec::new();

    for src in net.neuron_ids() {
        for syn in net.synapses_from(src) {
            has_in[syn.target.index()] = true;
            if syn.weight > 0.0 {
                positive_in[syn.target.index()] += syn.weight;
            } else if syn.weight == 0.0 {
                findings.push(Finding::ZeroWeight {
                    src,
                    dst: syn.target,
                });
            }
        }
    }

    for id in net.neuron_ids() {
        let p = net.params(id);
        let is_input = net.inputs().contains(&id);
        let is_output = net.outputs().contains(&id) || net.terminal() == Some(id);
        if !p.is_input_driven() {
            findings.push(Finding::Spontaneous(id));
            continue; // the other lints assume input-driven behaviour
        }
        if !is_input && !has_in[id.index()] {
            findings.push(Finding::Orphan(id));
        } else if !is_input
            && positive_in[id.index()] + p.v_reset <= p.v_threshold
            && has_in[id.index()]
        {
            findings.push(Finding::Unfirable(id));
        }
        if net.synapses_from(id).is_empty() && !is_output {
            findings.push(Finding::DeadEnd(id));
        }
    }

    // Reachability: one BFS over the CSR topology from every possible
    // spike source (marked inputs plus spontaneous neurons). A neuron
    // outside the reached set can never receive a delivery in any run
    // seeded at the inputs. Skipped when there are no seeds — entry
    // points are unknown, so every neuron would be flagged.
    let csr = net.csr();
    let mut seeds: Vec<NeuronId> = net.inputs().to_vec();
    for id in net.neuron_ids() {
        if !net.params(id).is_input_driven() {
            seeds.push(id);
        }
    }
    if !seeds.is_empty() {
        let mut reached = vec![false; n];
        let mut queue: Vec<usize> = Vec::new();
        for &s in &seeds {
            if !reached[s.index()] {
                reached[s.index()] = true;
                queue.push(s.index());
            }
        }
        while let Some(u) = queue.pop() {
            for syn in csr.out(u) {
                let v = syn.target.index();
                if !reached[v] {
                    reached[v] = true;
                    queue.push(v);
                }
            }
        }
        for id in net.neuron_ids() {
            if !reached[id.index()] {
                findings.push(Finding::NeverObserved(id));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    #[test]
    fn clean_network_has_no_findings() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 1).unwrap();
        net.mark_input(a);
        net.mark_output(b);
        assert!(audit(&net).is_empty());
    }

    #[test]
    fn detects_unfirable_gate() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let g = net.add_neuron(LifParams::gate_at_least(3)); // needs 3, gets 1
        net.connect(a, g, 1.0, 1).unwrap();
        net.mark_input(a);
        net.mark_output(g);
        assert!(audit(&net).contains(&Finding::Unfirable(g)));
    }

    #[test]
    fn detects_orphan_and_dead_end() {
        let mut net = Network::new();
        let orphan = net.add_neuron(LifParams::gate_at_least(1));
        let findings = audit(&net);
        assert!(findings.contains(&Finding::Orphan(orphan)));
        assert!(findings.contains(&Finding::DeadEnd(orphan)));
    }

    #[test]
    fn detects_spontaneous_and_zero_weight() {
        let mut net = Network::new();
        let s = net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        let t = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(s, t, 0.0, 1).unwrap();
        net.mark_output(t);
        let findings = audit(&net);
        assert!(findings.contains(&Finding::Spontaneous(s)));
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::ZeroWeight { .. })));
    }

    #[test]
    fn paper_circuits_audit_clean_for_firability() {
        // The adder's internal gates must all be firable (no Unfirable
        // findings — a regression guard for circuit constructions).
        // Dead ends are expected: diagnostic outputs go unmarked.
        let c = sgl_circuits_shim();
        let findings = audit(&c);
        assert!(
            !findings.iter().any(|f| matches!(f, Finding::Unfirable(_))),
            "{findings:?}"
        );
    }

    /// A small hand-built two-layer threshold circuit standing in for the
    /// sgl-circuits constructions (no cross-crate dev-dependency).
    fn sgl_circuits_shim() -> Network {
        let mut net = Network::new();
        let bias = net.add_neuron(LifParams::gate_at_least(1));
        net.mark_input(bias);
        let x = net.add_neuron(LifParams::gate_at_least(1));
        net.mark_input(x);
        let not = net.add_neuron(LifParams::gate(0.5));
        net.connect(bias, not, 1.0, 1).unwrap();
        net.connect(x, not, -1.0, 1).unwrap();
        let and = net.add_neuron(LifParams::gate_at_least(2));
        net.connect(bias, and, 1.0, 2).unwrap();
        net.connect(not, and, 1.0, 1).unwrap();
        net.mark_output(and);
        net
    }

    #[test]
    fn detects_never_observed_neuron() {
        // a -> b is live; c -> d is a disconnected island (c has input
        // synapses from nothing and is not marked input).
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        let c = net.add_neuron(LifParams::gate_at_least(1));
        let d = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 1).unwrap();
        net.connect(c, d, 1.0, 1).unwrap();
        net.mark_input(a);
        net.mark_output(b);
        net.mark_output(d);
        let findings = audit(&net);
        assert!(findings.contains(&Finding::NeverObserved(c)));
        assert!(findings.contains(&Finding::NeverObserved(d)));
        assert!(!findings.contains(&Finding::NeverObserved(a)));
        assert!(!findings.contains(&Finding::NeverObserved(b)));
    }

    #[test]
    fn reachability_skipped_without_seeds() {
        // No marked inputs and no spontaneous neurons: entry points are
        // unknown, so nothing is flagged NeverObserved.
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 1).unwrap();
        net.mark_output(b);
        assert!(!audit(&net)
            .iter()
            .any(|f| matches!(f, Finding::NeverObserved(_))));
    }

    #[test]
    fn spontaneous_neurons_seed_reachability() {
        // A spontaneous neuron reaches its target even with no inputs
        // marked anywhere.
        let mut net = Network::new();
        let s = net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        let t = net.add_neuron(LifParams::gate_at_least(1));
        let lone = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(s, t, 1.0, 1).unwrap();
        net.mark_output(t);
        net.mark_output(lone);
        let findings = audit(&net);
        assert!(!findings.contains(&Finding::NeverObserved(t)));
        assert!(findings.contains(&Finding::NeverObserved(lone)));
    }

    #[test]
    fn findings_display() {
        let f = Finding::Unfirable(NeuronId(3));
        assert!(f.to_string().contains("n3"));
        assert!(Finding::NeverObserved(NeuronId(7))
            .to_string()
            .contains("unreachable"));
    }
}

//! Structural lints for networks: catch wiring mistakes before running.
//!
//! Circuit construction bugs usually manifest as silent wrong answers
//! (a gate that can never fire, an input that reaches nothing). The
//! auditor walks the network once and reports conditions that are legal
//! under the model but almost always unintended.

use crate::network::Network;
use crate::types::NeuronId;

/// One audit finding.
#[derive(Clone, Debug, PartialEq)]
pub enum Finding {
    /// `v_reset > v_threshold`: fires forever without input (rejected by
    /// the event engine).
    Spontaneous(NeuronId),
    /// The neuron's threshold exceeds the sum of all positive incoming
    /// weights — it can never fire (unless it is an input).
    Unfirable(NeuronId),
    /// No incoming synapses and not an input — permanently silent.
    Orphan(NeuronId),
    /// No outgoing synapses and not an output/terminal — its spikes go
    /// nowhere.
    DeadEnd(NeuronId),
    /// A synapse with weight exactly 0 — contributes nothing.
    ZeroWeight {
        /// Source neuron.
        src: NeuronId,
        /// Target neuron.
        dst: NeuronId,
    },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spontaneous(n) => write!(f, "{n}: v_reset > v_threshold (fires forever)"),
            Self::Unfirable(n) => write!(f, "{n}: threshold exceeds total positive input"),
            Self::Orphan(n) => write!(f, "{n}: no inputs and not an input neuron"),
            Self::DeadEnd(n) => write!(f, "{n}: no outputs and not an output/terminal"),
            Self::ZeroWeight { src, dst } => write!(f, "{src} -> {dst}: zero-weight synapse"),
        }
    }
}

/// Audits `net`, returning all findings (empty = clean).
#[must_use]
pub fn audit(net: &Network) -> Vec<Finding> {
    let n = net.neuron_count();
    let mut positive_in = vec![0.0f64; n];
    let mut has_in = vec![false; n];
    let mut findings = Vec::new();

    for src in net.neuron_ids() {
        for syn in net.synapses_from(src) {
            has_in[syn.target.index()] = true;
            if syn.weight > 0.0 {
                positive_in[syn.target.index()] += syn.weight;
            } else if syn.weight == 0.0 {
                findings.push(Finding::ZeroWeight {
                    src,
                    dst: syn.target,
                });
            }
        }
    }

    for id in net.neuron_ids() {
        let p = net.params(id);
        let is_input = net.inputs().contains(&id);
        let is_output = net.outputs().contains(&id) || net.terminal() == Some(id);
        if !p.is_input_driven() {
            findings.push(Finding::Spontaneous(id));
            continue; // the other lints assume input-driven behaviour
        }
        if !is_input && !has_in[id.index()] {
            findings.push(Finding::Orphan(id));
        } else if !is_input
            && positive_in[id.index()] + p.v_reset <= p.v_threshold
            && has_in[id.index()]
        {
            findings.push(Finding::Unfirable(id));
        }
        if net.synapses_from(id).is_empty() && !is_output {
            findings.push(Finding::DeadEnd(id));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LifParams;

    #[test]
    fn clean_network_has_no_findings() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let b = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(a, b, 1.0, 1).unwrap();
        net.mark_input(a);
        net.mark_output(b);
        assert!(audit(&net).is_empty());
    }

    #[test]
    fn detects_unfirable_gate() {
        let mut net = Network::new();
        let a = net.add_neuron(LifParams::gate_at_least(1));
        let g = net.add_neuron(LifParams::gate_at_least(3)); // needs 3, gets 1
        net.connect(a, g, 1.0, 1).unwrap();
        net.mark_input(a);
        net.mark_output(g);
        assert!(audit(&net).contains(&Finding::Unfirable(g)));
    }

    #[test]
    fn detects_orphan_and_dead_end() {
        let mut net = Network::new();
        let orphan = net.add_neuron(LifParams::gate_at_least(1));
        let findings = audit(&net);
        assert!(findings.contains(&Finding::Orphan(orphan)));
        assert!(findings.contains(&Finding::DeadEnd(orphan)));
    }

    #[test]
    fn detects_spontaneous_and_zero_weight() {
        let mut net = Network::new();
        let s = net.add_neuron(LifParams {
            v_reset: 2.0,
            v_threshold: 1.0,
            decay: 0.0,
        });
        let t = net.add_neuron(LifParams::gate_at_least(1));
        net.connect(s, t, 0.0, 1).unwrap();
        net.mark_output(t);
        let findings = audit(&net);
        assert!(findings.contains(&Finding::Spontaneous(s)));
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::ZeroWeight { .. })));
    }

    #[test]
    fn paper_circuits_audit_clean_for_firability() {
        // The adder's internal gates must all be firable (no Unfirable
        // findings — a regression guard for circuit constructions).
        // Dead ends are expected: diagnostic outputs go unmarked.
        let c = sgl_circuits_shim();
        let findings = audit(&c);
        assert!(
            !findings.iter().any(|f| matches!(f, Finding::Unfirable(_))),
            "{findings:?}"
        );
    }

    /// A small hand-built two-layer threshold circuit standing in for the
    /// sgl-circuits constructions (no cross-crate dev-dependency).
    fn sgl_circuits_shim() -> Network {
        let mut net = Network::new();
        let bias = net.add_neuron(LifParams::gate_at_least(1));
        net.mark_input(bias);
        let x = net.add_neuron(LifParams::gate_at_least(1));
        net.mark_input(x);
        let not = net.add_neuron(LifParams::gate(0.5));
        net.connect(bias, not, 1.0, 1).unwrap();
        net.connect(x, not, -1.0, 1).unwrap();
        let and = net.add_neuron(LifParams::gate_at_least(2));
        net.connect(bias, and, 1.0, 2).unwrap();
        net.connect(not, and, 1.0, 1).unwrap();
        net.mark_output(and);
        net
    }

    #[test]
    fn findings_display() {
        let f = Finding::Unfirable(NeuronId(3));
        assert!(f.to_string().contains("n3"));
    }
}

//! Differential harness: the dense (literal), event-driven, bit-plane,
//! parallel dense, and partitioned engines must produce *bit-identical*
//! [`RunResult`]s — spike times, counts, raster, termination time and
//! reason, and work counters (modulo the documented `neuron_updates`
//! semantic difference; the partitioned engine matches the event engine
//! exactly, counters included) — across random networks. The partitioned
//! engine is swept at 1/2/4/8 partitions and, via the threaded BSP
//! driver, at 1/2/4 worker threads — the threaded sweep pins the f64
//! accumulation order, work counters, and observer series alike.
//!
//! Weights are drawn from a continuous range, so per-target synaptic sums
//! genuinely depend on accumulation order: these tests fail if any engine
//! deviates from the shared (sorted firing id) × (CSR synapse order)
//! delivery order. Delays occasionally exceed the time-wheel horizon to
//! exercise the overflow path (the wheel's ordered map, and the bit-plane
//! ring's equivalent), and networks run both thawed and frozen.

use proptest::prelude::*;
use sgl_snn::{
    engine::{
        BitplaneEngine, DenseEngine, Engine, EventEngine, ParallelDenseEngine, RunConfig,
        RunResult, TimeSeriesObserver,
    },
    CutStrategy, LifParams, Network, NeuronId, PartitionedEngine,
};

/// Partition counts every partitioned differential test sweeps: the
/// degenerate single partition, balanced splits, and more partitions
/// than some random nets have neurons (empty partitions).
const PART_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Worker-thread counts the threaded-driver sweeps exercise: the
/// sequential delegate, one busy/idle split, and full fan-out.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// A compact description of a random network we can generate shrinkable
/// instances of.
#[derive(Debug, Clone)]
struct NetSpec {
    neurons: Vec<(f64, u8)>, // (threshold, decay kind: 0 = integrator, 1 = gate, 2 = tau 0.5)
    // (src, dst, weight, small delay, large delay, delay kind)
    synapses: Vec<(usize, usize, f64, u32, u32, u8)>,
    initial: Vec<usize>,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    let n_range = 2usize..10;
    n_range.prop_flat_map(|n| {
        let neurons = proptest::collection::vec((0.5f64..4.0, 0u8..3), n);
        // Continuous weights: sums are order-sensitive in the last bits.
        // Delay kind 7 picks a beyond-horizon delay (wheel overflow path).
        let synapse = (0..n, 0..n, -2.5f64..3.5, 1u32..6, 4097u32..6000, 0u8..8);
        let synapses = proptest::collection::vec(synapse, 1..25);
        let initial = proptest::collection::vec(0..n, 1..4);
        (neurons, synapses, initial).prop_map(|(neurons, synapses, initial)| NetSpec {
            neurons,
            synapses,
            initial,
        })
    })
}

fn build(spec: &NetSpec) -> (Network, Vec<NeuronId>) {
    let mut net = Network::new();
    let ids: Vec<NeuronId> = spec
        .neurons
        .iter()
        .map(|&(threshold, kind)| {
            let params = match kind {
                0 => LifParams::integrator(threshold),
                1 => LifParams::gate(threshold),
                _ => LifParams {
                    v_reset: 0.0,
                    v_threshold: threshold,
                    decay: 0.5,
                },
            };
            net.add_neuron(params)
        })
        .collect();
    for &(s, d, w, small, large, kind) in &spec.synapses {
        let delay = if kind == 7 { large } else { small };
        net.connect(ids[s], ids[d], w, delay).unwrap();
    }
    let initial: Vec<NeuronId> = spec.initial.iter().map(|&i| ids[i]).collect();
    (net, initial)
}

/// A random OR-mask-eligible network: reset 0, thresholds in `[0, 1)`,
/// every weight in `(1, 3]` — strictly above any threshold — and varied
/// decays. The bit-plane engine runs these in pure-bitmask mode (for
/// small nets the density gate is permissive), which this strategy
/// differentially pins against the FP engines.
#[derive(Debug, Clone)]
struct OrNetSpec {
    neurons: Vec<(f64, u8)>,
    synapses: Vec<(usize, usize, f64, u32, u32, u8)>,
    initial: Vec<usize>,
}

fn or_net_spec() -> impl Strategy<Value = OrNetSpec> {
    let n_range = 2usize..10;
    n_range.prop_flat_map(|n| {
        let neurons = proptest::collection::vec((0.0f64..0.95, 0u8..3), n);
        let synapse = (0..n, 0..n, 1.01f64..3.0, 1u32..6, 4097u32..6000, 0u8..8);
        let synapses = proptest::collection::vec(synapse, 1..25);
        let initial = proptest::collection::vec(0..n, 1..4);
        (neurons, synapses, initial).prop_map(|(neurons, synapses, initial)| OrNetSpec {
            neurons,
            synapses,
            initial,
        })
    })
}

fn build_or(spec: &OrNetSpec) -> (Network, Vec<NeuronId>) {
    let mut net = Network::new();
    let ids: Vec<NeuronId> = spec
        .neurons
        .iter()
        .map(|&(threshold, kind)| {
            let decay = match kind {
                0 => 0.0,
                1 => 1.0,
                _ => 0.5,
            };
            net.add_neuron(LifParams {
                v_reset: 0.0,
                v_threshold: threshold,
                decay,
            })
        })
        .collect();
    for &(s, d, w, small, large, kind) in &spec.synapses {
        let delay = if kind == 7 { large } else { small };
        net.connect(ids[s], ids[d], w, delay).unwrap();
    }
    let initial: Vec<NeuronId> = spec.initial.iter().map(|&i| ids[i]).collect();
    (net, initial)
}

/// Exact equality up to the documented per-engine `neuron_updates`
/// semantics (dense engines count neurons × steps, the event engine counts
/// touched (neuron, step) pairs — see DESIGN.md).
fn assert_identical_modulo_updates(a: &RunResult, b: &RunResult) -> Result<(), String> {
    let mut b = b.clone();
    b.stats.neuron_updates = a.stats.neuron_updates;
    prop_assert_eq!(a, &b);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core differential property: all four engines, one random
    /// network, bit-identical results — on the thawed *and* frozen form.
    #[test]
    fn engines_agree_on_random_networks(spec in net_spec()) {
        let (net, initial) = build(&spec);
        let mut frozen = net.clone();
        frozen.freeze();
        for cfg in [
            RunConfig::fixed(60).with_raster(),
            RunConfig::until_quiescent(300).with_raster(),
        ] {
            let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
            let event = EventEngine.run(&net, &initial, &cfg).unwrap();
            let par = ParallelDenseEngine { threads: 4, min_chunk: 1 }.run(&net, &initial, &cfg).unwrap();
            let bp = BitplaneEngine.run(&net, &initial, &cfg).unwrap();
            // Parallel dense and bit-plane share the dense engine's update
            // semantics, so their whole results (work counters included)
            // must match exactly.
            prop_assert_eq!(&dense, &par);
            prop_assert_eq!(&dense, &bp);
            assert_identical_modulo_updates(&dense, &event)?;
            // The partitioned engine shares the event engine's lazy-decay
            // update and touched-set accounting, so its *entire* result —
            // work counters included — must equal the event engine's, at
            // every partition count and under both cut strategies.
            for parts in PART_COUNTS {
                for strategy in [CutStrategy::BfsGrow, CutStrategy::Range] {
                    let part = PartitionedEngine::new(parts)
                        .with_strategy(strategy)
                        .run(&net, &initial, &cfg)
                        .unwrap();
                    prop_assert_eq!(&event, &part);
                }
            }
            // A frozen network is observationally the same network.
            let dense_frozen = DenseEngine.run(&frozen, &initial, &cfg).unwrap();
            let bp_frozen = BitplaneEngine.run(&frozen, &initial, &cfg).unwrap();
            let part_frozen = PartitionedEngine::new(4).run(&frozen, &initial, &cfg).unwrap();
            prop_assert_eq!(&dense, &dense_frozen);
            prop_assert_eq!(&dense, &bp_frozen);
            prop_assert_eq!(&event, &part_frozen);
        }
    }

    #[test]
    fn engines_agree_with_terminal_stop(spec in net_spec()) {
        let (mut net, initial) = build(&spec);
        // Pick the last neuron as terminal; runs that never reach it stop on
        // the budget in both engines.
        let term = NeuronId((net.neuron_count() - 1) as u32);
        net.set_terminal(term);
        let cfg = RunConfig::until_terminal(60).with_raster();
        let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
        let event = EventEngine.run(&net, &initial, &cfg).unwrap();
        let par = ParallelDenseEngine { threads: 3, min_chunk: 1 }.run(&net, &initial, &cfg).unwrap();
        let bp = BitplaneEngine.run(&net, &initial, &cfg).unwrap();
        prop_assert_eq!(&dense, &par);
        prop_assert_eq!(&dense, &bp);
        assert_identical_modulo_updates(&dense, &event)?;
        for parts in PART_COUNTS {
            for threads in THREAD_COUNTS {
                let part = PartitionedEngine::new(parts)
                    .with_threads(threads)
                    .run(&net, &initial, &cfg)
                    .unwrap();
                prop_assert_eq!(&event, &part, "parts {} threads {}", parts, threads);
            }
        }
    }

    /// OR-mask-eligible networks (reset 0, non-negative thresholds, every
    /// weight above its target's threshold) flip the bit-plane engine into
    /// pure-bitmask delivery; the result must still be exactly the dense
    /// engine's, and the event engine's modulo updates.
    #[test]
    fn mask_mode_agrees_on_or_eligible_networks(spec in or_net_spec()) {
        let (net, initial) = build_or(&spec);
        for cfg in [
            RunConfig::fixed(40).with_raster(),
            RunConfig::until_quiescent(200).with_raster(),
        ] {
            let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
            let event = EventEngine.run(&net, &initial, &cfg).unwrap();
            let bp = BitplaneEngine.run(&net, &initial, &cfg).unwrap();
            prop_assert_eq!(&dense, &bp);
            assert_identical_modulo_updates(&dense, &event)?;
        }
    }

    /// Observation must be a pure read: each engine's instrumented run is
    /// bit-identical to its uninstrumented run, and the observer's series
    /// sum exactly to the `SimStats` totals of that run.
    #[test]
    fn observation_does_not_perturb_results(spec in net_spec()) {
        let (net, initial) = build(&spec);
        for cfg in [
            RunConfig::fixed(60).with_raster(),
            RunConfig::until_quiescent(300).with_raster(),
        ] {
            let par_engine = ParallelDenseEngine { threads: 4, min_chunk: 1 };
            let plain: [RunResult; 4] = [
                DenseEngine.run(&net, &initial, &cfg).unwrap(),
                EventEngine.run(&net, &initial, &cfg).unwrap(),
                par_engine.run(&net, &initial, &cfg).unwrap(),
                BitplaneEngine.run(&net, &initial, &cfg).unwrap(),
            ];
            let mut observers = [
                TimeSeriesObserver::new(),
                TimeSeriesObserver::new(),
                TimeSeriesObserver::new(),
                TimeSeriesObserver::new(),
            ];
            let observed: [RunResult; 4] = [
                DenseEngine.run_observed(&net, &initial, &cfg, &mut observers[0]).unwrap(),
                EventEngine.run_observed(&net, &initial, &cfg, &mut observers[1]).unwrap(),
                par_engine.run_observed(&net, &initial, &cfg, &mut observers[2]).unwrap(),
                BitplaneEngine.run_observed(&net, &initial, &cfg, &mut observers[3]).unwrap(),
            ];
            for (p, (o, obs)) in plain.iter().zip(observed.iter().zip(&observers)) {
                prop_assert_eq!(p, o);
                prop_assert_eq!(obs.total_spikes(), o.stats.spike_events);
                prop_assert_eq!(obs.total_deliveries(), o.stats.synaptic_deliveries);
                prop_assert_eq!(obs.total_updates(), o.stats.neuron_updates);
                prop_assert_eq!(obs.final_step, o.steps);
            }
            // Same purity for the partitioned engine, whose observed path
            // additionally reports per-channel cut traffic.
            for parts in PART_COUNTS {
                for threads in [1, 4] {
                    let engine = PartitionedEngine::new(parts).with_threads(threads);
                    let plain_part = engine.run(&net, &initial, &cfg).unwrap();
                    let mut obs = TimeSeriesObserver::new();
                    let observed_part = engine.run_observed(&net, &initial, &cfg, &mut obs).unwrap();
                    prop_assert_eq!(&plain_part, &observed_part);
                    prop_assert_eq!(obs.total_spikes(), observed_part.stats.spike_events);
                    prop_assert_eq!(obs.total_deliveries(), observed_part.stats.synaptic_deliveries);
                    prop_assert_eq!(obs.total_updates(), observed_part.stats.neuron_updates);
                    prop_assert_eq!(obs.final_step, observed_part.steps);
                }
            }
        }
    }

    #[test]
    fn event_engine_never_does_more_updates(spec in net_spec()) {
        let (net, initial) = build(&spec);
        let cfg = RunConfig::fixed(60);
        let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
        let event = EventEngine.run(&net, &initial, &cfg).unwrap();
        // The event-driven advantage the paper banks on: touched-neuron
        // updates are bounded by the dense engine's neurons-times-steps.
        prop_assert!(event.stats.neuron_updates <= dense.stats.neuron_updates);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The threaded BSP driver sweep: every (threads, parts, strategy)
    /// combination of the worker pool must reproduce the event engine's
    /// result bit-for-bit — raster, termination, and work counters — on
    /// random networks with order-sensitive f64 weights, beyond-horizon
    /// delays, and both thawed and frozen forms.
    #[test]
    fn threaded_partition_driver_matches_event(spec in net_spec()) {
        let (net, initial) = build(&spec);
        let mut frozen = net.clone();
        frozen.freeze();
        for cfg in [
            RunConfig::fixed(60).with_raster(),
            RunConfig::until_quiescent(300).with_raster(),
        ] {
            let event = EventEngine.run(&net, &initial, &cfg).unwrap();
            for parts in [2usize, 4, 8] {
                for strategy in [CutStrategy::BfsGrow, CutStrategy::Range] {
                    for threads in THREAD_COUNTS {
                        let part = PartitionedEngine::new(parts)
                            .with_strategy(strategy)
                            .with_threads(threads)
                            .run(&net, &initial, &cfg)
                            .unwrap();
                        prop_assert_eq!(
                            &event, &part,
                            "parts {} threads {} strategy {:?}", parts, threads, strategy
                        );
                    }
                }
            }
            let event_frozen = EventEngine.run(&frozen, &initial, &cfg).unwrap();
            let part_frozen = PartitionedEngine::new(4)
                .with_threads(4)
                .run(&frozen, &initial, &cfg)
                .unwrap();
            prop_assert_eq!(&event_frozen, &part_frozen);
        }
    }
}

/// Observer that records the per-step delivery batches announced via
/// `on_spike_batch` and the per-step spike counts from `on_step` — the
/// two channels whose agreement across engines the duplicate-stimulus
/// test pins down.
#[derive(Default)]
struct BatchTally {
    batch_deliveries: Vec<(u64, u64)>,
    step_spikes: Vec<(u64, u64)>,
}

impl sgl_snn::engine::RunObserver for BatchTally {
    fn on_step(&mut self, t: u64, step: sgl_snn::engine::StepRecord) {
        self.step_spikes.push((t, step.spikes));
    }
    fn on_spike_batch(&mut self, t: u64, deliveries: u64) {
        self.batch_deliveries.push((t, deliveries));
    }
}

/// Duplicate induced spikes: every engine dedups the `t = 0` frontier
/// (`fired.sort_unstable(); fired.dedup()`), and `SimStats::spike_events`
/// plus the observer channels must agree on the *deduped* counts,
/// engine-to-engine, across all four engines.
#[test]
fn duplicate_initial_spikes_dedup_identically() {
    let mut net = Network::new();
    let a = net.add_neuron(LifParams::gate_at_least(1));
    let b = net.add_neuron(LifParams::gate_at_least(1));
    let c = net.add_neuron(LifParams::gate_at_least(2));
    net.connect(a, c, 1.0, 2).unwrap();
    net.connect(b, c, 1.0, 2).unwrap();
    // a twice, b three times: the deduped frontier is {a, b}. `c` is a
    // coincidence gate, so it fires iff each source is delivered exactly
    // once — an engine that kept the duplicates would over-deliver.
    let initial = [a, a, b, b, a, b];
    let cfg = RunConfig::until_quiescent(20).with_raster();

    let par = ParallelDenseEngine {
        threads: 3,
        min_chunk: 1,
    };
    let mut tallies: Vec<(&str, RunResult, BatchTally)> = Vec::new();
    for name in [
        "dense",
        "event",
        "parallel",
        "bitplane",
        "partitioned",
        "partitioned-mt",
    ] {
        let mut tally = BatchTally::default();
        let r = match name {
            "dense" => DenseEngine.run_observed(&net, &initial, &cfg, &mut tally),
            "event" => EventEngine.run_observed(&net, &initial, &cfg, &mut tally),
            "parallel" => par.run_observed(&net, &initial, &cfg, &mut tally),
            "partitioned" => {
                PartitionedEngine::new(2).run_observed(&net, &initial, &cfg, &mut tally)
            }
            "partitioned-mt" => PartitionedEngine::new(3)
                .with_threads(2)
                .run_observed(&net, &initial, &cfg, &mut tally),
            _ => BitplaneEngine.run_observed(&net, &initial, &cfg, &mut tally),
        }
        .unwrap();
        tallies.push((name, r, tally));
    }

    let (_, dense, dense_tally) = &tallies[0];
    // Deduped: a, b at t=0 and c at t=2 — not 6 + 1.
    assert_eq!(dense.stats.spike_events, 3);
    assert_eq!(dense.spike_counts, vec![1, 1, 1]);
    assert_eq!(
        dense_tally.step_spikes.first(),
        Some(&(0, 2)),
        "t = 0 frontier must be deduped before recording"
    );
    for (name, r, tally) in &tallies[1..] {
        let mut r = r.clone();
        r.stats.neuron_updates = dense.stats.neuron_updates;
        assert_eq!(&r, dense, "{name} diverged");
        // The event engine only visits steps with activity, so its per-step
        // announcements are a subsequence of the dense trace; engines with
        // dense stepping must match the dense trace exactly, and all four
        // must agree on the steps where something happened.
        let nonzero = |v: &Vec<(u64, u64)>| -> Vec<(u64, u64)> {
            v.iter().copied().filter(|&(_, d)| d > 0).collect()
        };
        if *name == "event" || name.starts_with("partitioned") {
            // Both visit only steps with activity, so their per-step
            // announcements are a subsequence of the dense trace.
            assert_eq!(
                nonzero(&tally.step_spikes),
                nonzero(&dense_tally.step_spikes),
                "{name} active-step spike counts diverged"
            );
        } else {
            assert_eq!(
                tally.step_spikes, dense_tally.step_spikes,
                "{name} per-step spike counts diverged"
            );
        }
        assert_eq!(
            nonzero(&tally.batch_deliveries),
            nonzero(&dense_tally.batch_deliveries),
            "{name} delivery batches diverged"
        );
    }
}

/// Wheel-vs-ring overflow unit: a delay beyond the shared horizon cap
/// (4096) takes the wheel's ordered-map path in the dense engine and the
/// ring's ordered-map path in the bit-plane engine; both classifications
/// and both results must agree exactly.
#[test]
fn beyond_horizon_overflow_matches_wheel() {
    let mut net = Network::new();
    let a = net.add_neuron(LifParams::gate_at_least(1));
    let b = net.add_neuron(LifParams::gate_at_least(1));
    let c = net.add_neuron(LifParams::gate_at_least(2));
    net.connect(a, b, 1.0, 4096).unwrap(); // last in-horizon delay
    net.connect(a, c, 1.5, 4097).unwrap(); // first overflow delay
    net.connect(b, c, 1.5, 1).unwrap(); // coincides with the overflow arrival
    let topo = net.bitplane();
    assert_eq!(topo.horizon(), 4096);
    assert_eq!(
        topo.overflow_synapses(),
        1,
        "exactly the 4097-delay synapse must overflow"
    );

    let cfg = RunConfig::until_quiescent(10_000).with_raster();
    let dense = DenseEngine.run(&net, &[a], &cfg).unwrap();
    let bp = BitplaneEngine.run(&net, &[a], &cfg).unwrap();
    assert_eq!(dense, bp);
    // c needs both the in-horizon relay (via b) and the overflow arrival
    // in the same step: 0 + 4096 + 1 == 0 + 4097.
    assert_eq!(bp.first_spike(c), Some(4097));
    // Partition wheels are sized to the *global* max delay, so the
    // in-horizon/overflow classification — and the slots-before-overflow
    // drain order at the coinciding step — must match the monolithic
    // wheel at every partition count, including across the cut.
    let event = EventEngine.run(&net, &[a], &cfg).unwrap();
    for parts in PART_COUNTS {
        for threads in THREAD_COUNTS {
            let part = PartitionedEngine::new(parts)
                .with_threads(threads)
                .run(&net, &[a], &cfg)
                .unwrap();
            assert_eq!(event, part, "parts = {parts}, threads = {threads}");
        }
    }
    let mut as_dense = event.clone();
    as_dense.stats.neuron_updates = dense.stats.neuron_updates;
    assert_eq!(dense, as_dense);
}

//! Differential harness: the dense (literal), event-driven, and parallel
//! dense engines must produce *bit-identical* [`RunResult`]s — spike
//! times, counts, raster, termination time and reason, and work counters
//! (modulo the documented `neuron_updates` semantic difference) — across
//! random networks.
//!
//! Weights are drawn from a continuous range, so per-target synaptic sums
//! genuinely depend on accumulation order: these tests fail if any engine
//! deviates from the shared (sorted firing id) × (CSR synapse order)
//! delivery order. Delays occasionally exceed the time-wheel horizon to
//! exercise the overflow path.

use proptest::prelude::*;
use sgl_snn::{
    engine::{
        DenseEngine, Engine, EventEngine, ParallelDenseEngine, RunConfig, RunResult,
        TimeSeriesObserver,
    },
    LifParams, Network, NeuronId,
};

/// A compact description of a random network we can generate shrinkable
/// instances of.
#[derive(Debug, Clone)]
struct NetSpec {
    neurons: Vec<(f64, u8)>, // (threshold, decay kind: 0 = integrator, 1 = gate, 2 = tau 0.5)
    // (src, dst, weight, small delay, large delay, delay kind)
    synapses: Vec<(usize, usize, f64, u32, u32, u8)>,
    initial: Vec<usize>,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    let n_range = 2usize..10;
    n_range.prop_flat_map(|n| {
        let neurons = proptest::collection::vec((0.5f64..4.0, 0u8..3), n);
        // Continuous weights: sums are order-sensitive in the last bits.
        // Delay kind 7 picks a beyond-horizon delay (wheel overflow path).
        let synapse = (0..n, 0..n, -2.5f64..3.5, 1u32..6, 4097u32..6000, 0u8..8);
        let synapses = proptest::collection::vec(synapse, 1..25);
        let initial = proptest::collection::vec(0..n, 1..4);
        (neurons, synapses, initial).prop_map(|(neurons, synapses, initial)| NetSpec {
            neurons,
            synapses,
            initial,
        })
    })
}

fn build(spec: &NetSpec) -> (Network, Vec<NeuronId>) {
    let mut net = Network::new();
    let ids: Vec<NeuronId> = spec
        .neurons
        .iter()
        .map(|&(threshold, kind)| {
            let params = match kind {
                0 => LifParams::integrator(threshold),
                1 => LifParams::gate(threshold),
                _ => LifParams {
                    v_reset: 0.0,
                    v_threshold: threshold,
                    decay: 0.5,
                },
            };
            net.add_neuron(params)
        })
        .collect();
    for &(s, d, w, small, large, kind) in &spec.synapses {
        let delay = if kind == 7 { large } else { small };
        net.connect(ids[s], ids[d], w, delay).unwrap();
    }
    let initial: Vec<NeuronId> = spec.initial.iter().map(|&i| ids[i]).collect();
    (net, initial)
}

/// Exact equality up to the documented per-engine `neuron_updates`
/// semantics (dense engines count neurons × steps, the event engine counts
/// touched (neuron, step) pairs — see DESIGN.md).
fn assert_identical_modulo_updates(a: &RunResult, b: &RunResult) -> Result<(), String> {
    let mut b = b.clone();
    b.stats.neuron_updates = a.stats.neuron_updates;
    prop_assert_eq!(a, &b);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core differential property: all three engines, one random
    /// network, bit-identical results.
    #[test]
    fn engines_agree_on_random_networks(spec in net_spec()) {
        let (net, initial) = build(&spec);
        for cfg in [
            RunConfig::fixed(60).with_raster(),
            RunConfig::until_quiescent(300).with_raster(),
        ] {
            let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
            let event = EventEngine.run(&net, &initial, &cfg).unwrap();
            let par = ParallelDenseEngine { threads: 4, min_chunk: 1 }.run(&net, &initial, &cfg).unwrap();
            // Parallel dense shares the dense engine's update semantics, so
            // its whole result (work counters included) must match exactly.
            prop_assert_eq!(&dense, &par);
            assert_identical_modulo_updates(&dense, &event)?;
        }
    }

    #[test]
    fn engines_agree_with_terminal_stop(spec in net_spec()) {
        let (mut net, initial) = build(&spec);
        // Pick the last neuron as terminal; runs that never reach it stop on
        // the budget in both engines.
        let term = NeuronId((net.neuron_count() - 1) as u32);
        net.set_terminal(term);
        let cfg = RunConfig::until_terminal(60).with_raster();
        let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
        let event = EventEngine.run(&net, &initial, &cfg).unwrap();
        let par = ParallelDenseEngine { threads: 3, min_chunk: 1 }.run(&net, &initial, &cfg).unwrap();
        prop_assert_eq!(&dense, &par);
        assert_identical_modulo_updates(&dense, &event)?;
    }

    /// Observation must be a pure read: each engine's instrumented run is
    /// bit-identical to its uninstrumented run, and the observer's series
    /// sum exactly to the `SimStats` totals of that run.
    #[test]
    fn observation_does_not_perturb_results(spec in net_spec()) {
        let (net, initial) = build(&spec);
        for cfg in [
            RunConfig::fixed(60).with_raster(),
            RunConfig::until_quiescent(300).with_raster(),
        ] {
            let par_engine = ParallelDenseEngine { threads: 4, min_chunk: 1 };
            let plain: [RunResult; 3] = [
                DenseEngine.run(&net, &initial, &cfg).unwrap(),
                EventEngine.run(&net, &initial, &cfg).unwrap(),
                par_engine.run(&net, &initial, &cfg).unwrap(),
            ];
            let mut observers = [
                TimeSeriesObserver::new(),
                TimeSeriesObserver::new(),
                TimeSeriesObserver::new(),
            ];
            let observed: [RunResult; 3] = [
                DenseEngine.run_observed(&net, &initial, &cfg, &mut observers[0]).unwrap(),
                EventEngine.run_observed(&net, &initial, &cfg, &mut observers[1]).unwrap(),
                par_engine.run_observed(&net, &initial, &cfg, &mut observers[2]).unwrap(),
            ];
            for (p, (o, obs)) in plain.iter().zip(observed.iter().zip(&observers)) {
                prop_assert_eq!(p, o);
                prop_assert_eq!(obs.total_spikes(), o.stats.spike_events);
                prop_assert_eq!(obs.total_deliveries(), o.stats.synaptic_deliveries);
                prop_assert_eq!(obs.total_updates(), o.stats.neuron_updates);
                prop_assert_eq!(obs.final_step, o.steps);
            }
        }
    }

    #[test]
    fn event_engine_never_does_more_updates(spec in net_spec()) {
        let (net, initial) = build(&spec);
        let cfg = RunConfig::fixed(60);
        let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
        let event = EventEngine.run(&net, &initial, &cfg).unwrap();
        // The event-driven advantage the paper banks on: touched-neuron
        // updates are bounded by the dense engine's neurons-times-steps.
        prop_assert!(event.stats.neuron_updates <= dense.stats.neuron_updates);
    }
}

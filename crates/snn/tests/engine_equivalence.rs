//! Property tests: the dense (literal) and event-driven engines must agree
//! on every observable — spike times, counts, termination time and reason —
//! across random networks. This validates the event engine's lazy-decay
//! optimisation against the paper's verbatim dynamics.

use proptest::prelude::*;
use sgl_snn::{
    engine::{DenseEngine, Engine, EventEngine, ParallelDenseEngine, RunConfig},
    LifParams, Network, NeuronId,
};

/// A compact description of a random network we can generate shrinkable
/// instances of.
#[derive(Debug, Clone)]
struct NetSpec {
    neurons: Vec<(f64, u8)>, // (threshold, decay kind: 0 = integrator, 1 = gate, 2 = tau 0.5)
    synapses: Vec<(usize, usize, i8, u8)>, // (src, dst, weight sign/mag, delay)
    initial: Vec<usize>,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    let n_range = 2usize..10;
    n_range.prop_flat_map(|n| {
        let neurons = proptest::collection::vec((0.5f64..4.0, 0u8..3), n);
        let synapse = (0..n, 0..n, -2i8..=3, 1u8..6);
        let synapses = proptest::collection::vec(synapse, 1..25);
        let initial = proptest::collection::vec(0..n, 1..4);
        (neurons, synapses, initial).prop_map(|(neurons, synapses, initial)| NetSpec {
            neurons,
            synapses,
            initial,
        })
    })
}

fn build(spec: &NetSpec) -> (Network, Vec<NeuronId>) {
    let mut net = Network::new();
    let ids: Vec<NeuronId> = spec
        .neurons
        .iter()
        .map(|&(threshold, kind)| {
            let params = match kind {
                0 => LifParams::integrator(threshold),
                1 => LifParams::gate(threshold),
                _ => LifParams {
                    v_reset: 0.0,
                    v_threshold: threshold,
                    decay: 0.5,
                },
            };
            net.add_neuron(params)
        })
        .collect();
    for &(s, d, w, delay) in &spec.synapses {
        net.connect(ids[s], ids[d], f64::from(w), u32::from(delay))
            .unwrap();
    }
    let initial: Vec<NeuronId> = spec.initial.iter().map(|&i| ids[i]).collect();
    (net, initial)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engines_agree_on_random_networks(spec in net_spec()) {
        let (net, initial) = build(&spec);
        let cfg = RunConfig::fixed(60).with_raster();
        let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
        let event = EventEngine.run(&net, &initial, &cfg).unwrap();

        prop_assert_eq!(&dense.first_spikes, &event.first_spikes);
        prop_assert_eq!(&dense.last_spikes, &event.last_spikes);
        prop_assert_eq!(&dense.spike_counts, &event.spike_counts);
        prop_assert_eq!(dense.raster.as_ref().unwrap(), event.raster.as_ref().unwrap());
        prop_assert_eq!(dense.stats.spike_events, event.stats.spike_events);
        prop_assert_eq!(dense.stats.synaptic_deliveries, event.stats.synaptic_deliveries);
        prop_assert_eq!(dense.steps, event.steps);
        prop_assert_eq!(dense.reason, event.reason);
    }

    #[test]
    fn parallel_dense_is_bit_identical(spec in net_spec()) {
        let (net, initial) = build(&spec);
        let cfg = RunConfig::fixed(60).with_raster();
        let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
        let par = ParallelDenseEngine { threads: 4 }.run(&net, &initial, &cfg).unwrap();
        prop_assert_eq!(&dense.first_spikes, &par.first_spikes);
        prop_assert_eq!(&dense.last_spikes, &par.last_spikes);
        prop_assert_eq!(&dense.spike_counts, &par.spike_counts);
        prop_assert_eq!(dense.raster.as_ref().unwrap(), par.raster.as_ref().unwrap());
        prop_assert_eq!(dense.steps, par.steps);
        prop_assert_eq!(dense.reason, par.reason);
    }

    #[test]
    fn engines_agree_with_terminal_stop(spec in net_spec()) {
        let (mut net, initial) = build(&spec);
        // Pick the last neuron as terminal; runs that never reach it stop on
        // the budget in both engines.
        let term = NeuronId((net.neuron_count() - 1) as u32);
        net.set_terminal(term);
        let cfg = RunConfig::until_terminal(60);
        let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
        let event = EventEngine.run(&net, &initial, &cfg).unwrap();
        prop_assert_eq!(dense.steps, event.steps);
        prop_assert_eq!(dense.reason, event.reason);
        prop_assert_eq!(&dense.first_spikes, &event.first_spikes);
    }

    #[test]
    fn event_engine_never_does_more_updates(spec in net_spec()) {
        let (net, initial) = build(&spec);
        let cfg = RunConfig::fixed(60);
        let dense = DenseEngine.run(&net, &initial, &cfg).unwrap();
        let event = EventEngine.run(&net, &initial, &cfg).unwrap();
        // The event-driven advantage the paper banks on: touched-neuron
        // updates are bounded by the dense engine's neurons-times-steps.
        prop_assert!(event.stats.neuron_updates <= dense.stats.neuron_updates);
    }
}

//! Table-driven stop-semantics contract: every engine must agree on the
//! `(StopReason, steps)` pair for each stop condition, including the t = 0
//! edge cases (terminal / listed neurons among the induced spikes, empty
//! networks, vacuous `AllOf`).
//!
//! The fixture is a 4-neuron relay chain with delay 2 plus one isolated
//! neuron:
//!
//! ```text
//! 0 --2--> 1 --2--> 2 --2--> 3        4 (isolated)
//! ```
//!
//! so with spike induction at neuron 0, neuron k fires at t = 2k and the
//! network quiesces at t = 6.

use sgl_snn::engine::{
    DenseEngine, Engine, EventEngine, ParallelDenseEngine, RunConfig, StopCondition, StopReason,
};
use sgl_snn::{LifParams, Network, NeuronId, Time};

fn fixture() -> (Network, Vec<NeuronId>) {
    let mut net = Network::new();
    let ids = net.add_neurons(LifParams::gate_at_least(1), 5);
    for w in ids[..4].windows(2) {
        net.connect(w[0], w[1], 1.0, 2).unwrap();
    }
    net.set_terminal(ids[3]);
    (net, ids)
}

fn engines() -> Vec<(&'static str, Box<dyn Engine>)> {
    vec![
        ("dense", Box::new(DenseEngine)),
        ("event", Box::new(EventEngine)),
        (
            "parallel",
            Box::new(ParallelDenseEngine {
                threads: 3,
                min_chunk: 1,
            }),
        ),
    ]
}

/// One row of the semantics table: (name, stop, max_steps, initial spikes,
/// expected reason, expected T).
type Case = (
    &'static str,
    StopCondition,
    Time,
    Vec<NeuronId>,
    StopReason,
    Time,
);

#[test]
fn all_engines_agree_on_stop_reason_and_steps() {
    let n = |i: u32| NeuronId(i);
    let cases: Vec<Case> = vec![
        (
            "quiescent after the chain drains",
            StopCondition::Quiescent,
            50,
            vec![n(0)],
            StopReason::Quiescent,
            6,
        ),
        (
            "quiescent budget cut short",
            StopCondition::Quiescent,
            4,
            vec![n(0)],
            StopReason::MaxStepsReached,
            4,
        ),
        (
            "quiescent at exactly the budget",
            StopCondition::Quiescent,
            6,
            vec![n(0)],
            StopReason::Quiescent,
            6,
        ),
        (
            "quiescent at t = 0 with no initial spikes",
            StopCondition::Quiescent,
            10,
            vec![],
            StopReason::Quiescent,
            0,
        ),
        (
            "quiescent at t = 0 when the spike has no fan-out",
            StopCondition::Quiescent,
            10,
            vec![n(3)],
            StopReason::Quiescent,
            0,
        ),
        (
            "max-steps quiesces early anyway",
            StopCondition::MaxSteps,
            10,
            vec![n(0)],
            StopReason::Quiescent,
            6,
        ),
        (
            "max-steps runs out mid-chain",
            StopCondition::MaxSteps,
            3,
            vec![n(0)],
            StopReason::MaxStepsReached,
            3,
        ),
        (
            "terminal fires at the chain's end",
            StopCondition::Terminal,
            50,
            vec![n(0)],
            StopReason::ConditionMet,
            6,
        ),
        (
            "terminal among the induced spikes stops at t = 0",
            StopCondition::Terminal,
            50,
            vec![n(0), n(3)],
            StopReason::ConditionMet,
            0,
        ),
        (
            "all-of met mid-chain",
            StopCondition::AllOf(vec![n(1), n(2)]),
            50,
            vec![n(0)],
            StopReason::ConditionMet,
            4,
        ),
        (
            "all-of with duplicate ids still satisfiable",
            StopCondition::AllOf(vec![n(1), n(1), n(3), n(1)]),
            50,
            vec![n(0)],
            StopReason::ConditionMet,
            6,
        ),
        (
            "all-of met at t = 0",
            StopCondition::AllOf(vec![n(0)]),
            50,
            vec![n(0)],
            StopReason::ConditionMet,
            0,
        ),
        (
            "empty all-of is vacuously met at t = 0",
            StopCondition::AllOf(vec![]),
            50,
            vec![n(0)],
            StopReason::ConditionMet,
            0,
        ),
        (
            "all-of never completed quiesces with the chain",
            StopCondition::AllOf(vec![n(1), n(4)]),
            12,
            vec![n(0)],
            StopReason::Quiescent,
            6,
        ),
        (
            "all-of never completed burns a mid-flight budget",
            StopCondition::AllOf(vec![n(1), n(4)]),
            5,
            vec![n(0)],
            StopReason::MaxStepsReached,
            5,
        ),
        (
            "any-of met mid-chain",
            StopCondition::AnyOf(vec![n(2), n(3)]),
            50,
            vec![n(0)],
            StopReason::ConditionMet,
            4,
        ),
        (
            "any-of met at t = 0",
            StopCondition::AnyOf(vec![n(0), n(3)]),
            50,
            vec![n(0)],
            StopReason::ConditionMet,
            0,
        ),
        (
            "any-of of an unreachable neuron quiesces",
            StopCondition::AnyOf(vec![n(4)]),
            50,
            vec![n(0)],
            StopReason::Quiescent,
            6,
        ),
        (
            "empty any-of is unsatisfiable and quiesces",
            StopCondition::AnyOf(vec![]),
            50,
            vec![n(0)],
            StopReason::Quiescent,
            6,
        ),
    ];

    let (net, _) = fixture();
    for (name, stop, max_steps, initial, reason, steps) in cases {
        for (engine_name, engine) in engines() {
            let cfg = RunConfig {
                max_steps,
                stop: stop.clone(),
                record_raster: false,
                strict: false,
            };
            let r = engine.run(&net, &initial, &cfg).unwrap();
            assert_eq!(r.reason, reason, "case '{name}' on {engine_name}");
            assert_eq!(r.steps, steps, "case '{name}' on {engine_name}");
        }
    }
}

/// End-to-end regression for the `AllOf` duplicate-id bug: with strict
/// mode on, the inflated pending count didn't just waste the budget — it
/// turned a satisfiable run into a hard error.
#[test]
fn strict_all_of_with_duplicates_succeeds() {
    let (net, ids) = fixture();
    let cfg = RunConfig::until_all(vec![ids[1], ids[1], ids[2]], 50).strict();
    for (engine_name, engine) in engines() {
        let r = engine
            .run(&net, &[ids[0]], &cfg)
            .unwrap_or_else(|e| panic!("{engine_name} errored: {e}"));
        assert_eq!(r.reason, StopReason::ConditionMet, "{engine_name}");
        assert_eq!(r.steps, 4, "{engine_name}");
    }
}

/// Strict mode still errors when the budget ends with the condition unmet
/// and spikes in flight.
#[test]
fn strict_unmet_condition_still_errors() {
    let (net, ids) = fixture();
    let cfg = RunConfig::until_all(vec![ids[1], ids[4]], 5).strict();
    for (engine_name, engine) in engines() {
        assert!(
            engine.run(&net, &[ids[0]], &cfg).is_err(),
            "{engine_name} should error"
        );
    }
}

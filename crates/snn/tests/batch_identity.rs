//! Differential harness for the batch runtime: a batch of runs executed
//! over recycled per-worker scratch must be bit-identical to the same
//! runs executed sequentially, each on a fresh engine — for every engine
//! the batch runner can dispatch to, at every thread count.
//!
//! This is the guarantee that makes [`BatchRunner`] a pure optimisation:
//! [`RunScratch::reset`] restores observationally-fresh state, so no run
//! can see residue (voltages, pending deliveries, wheel overflow entries)
//! from whatever its worker simulated before it. Weights are continuous
//! and delays occasionally exceed the time-wheel horizon, so both the
//! FP-accumulation order and the overflow path are exercised.

use proptest::prelude::*;
use sgl_snn::{
    engine::{
        BatchRunner, BitplaneEngine, DenseEngine, Engine, EngineChoice, EventEngine,
        ParallelDenseEngine, RunConfig, RunSpec,
    },
    LifParams, Network, NeuronId, PartitionedEngine,
};

/// A compact, shrinkable description of a random network plus a batch of
/// stimulus sets (one per run in the batch).
#[derive(Debug, Clone)]
struct BatchSpec {
    neurons: Vec<(f64, u8)>, // (threshold, decay kind: 0 = integrator, 1 = gate, 2 = tau 0.5)
    // (src, dst, weight, small delay, large delay, delay kind)
    synapses: Vec<(usize, usize, f64, u32, u32, u8)>,
    stimuli: Vec<Vec<usize>>,
}

fn batch_spec() -> impl Strategy<Value = BatchSpec> {
    let n_range = 2usize..10;
    n_range.prop_flat_map(|n| {
        let neurons = proptest::collection::vec((0.5f64..4.0, 0u8..3), n);
        // Delay kind 7 picks a beyond-horizon delay (wheel overflow path),
        // so recycled wheels carry overflow state into their reset.
        let synapse = (0..n, 0..n, -2.5f64..3.5, 1u32..6, 4097u32..6000, 0u8..8);
        let synapses = proptest::collection::vec(synapse, 1..25);
        let stimuli = proptest::collection::vec(proptest::collection::vec(0..n, 1..4), 1..7);
        (neurons, synapses, stimuli).prop_map(|(neurons, synapses, stimuli)| BatchSpec {
            neurons,
            synapses,
            stimuli,
        })
    })
}

fn build(spec: &BatchSpec) -> (Network, Vec<RunSpec>) {
    let mut net = Network::new();
    let ids: Vec<NeuronId> = spec
        .neurons
        .iter()
        .map(|&(threshold, kind)| {
            let params = match kind {
                0 => LifParams::integrator(threshold),
                1 => LifParams::gate(threshold),
                _ => LifParams {
                    v_reset: 0.0,
                    v_threshold: threshold,
                    decay: 0.5,
                },
            };
            net.add_neuron(params)
        })
        .collect();
    for &(s, d, w, small, large, kind) in &spec.synapses {
        let delay = if kind == 7 { large } else { small };
        net.connect(ids[s], ids[d], w, delay).unwrap();
    }
    // Alternate stop conditions across the batch so recycled scratch sees
    // runs of different lengths back to back.
    let specs = spec
        .stimuli
        .iter()
        .enumerate()
        .map(|(i, stim)| {
            let initial: Vec<NeuronId> = stim.iter().map(|&s| ids[s]).collect();
            let config = if i % 2 == 0 {
                RunConfig::fixed(60).with_raster()
            } else {
                RunConfig::until_quiescent(300).with_raster()
            };
            RunSpec::new(initial, config)
        })
        .collect();
    (net, specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The core property: for each engine, batched == sequential, exactly.
    /// Same engine on both sides, so even `neuron_updates` must agree.
    #[test]
    fn batch_matches_sequential_on_all_engines(spec in batch_spec()) {
        let (net, specs) = build(&spec);
        let choices = [
            EngineChoice::Dense,
            EngineChoice::Event,
            EngineChoice::Bitplane,
            EngineChoice::Parallel(ParallelDenseEngine { threads: 3, min_chunk: 1 }),
            EngineChoice::Partitioned { parts: 3, threads: 2 },
        ];
        for choice in choices {
            for threads in [1, 4] {
                let batched = BatchRunner::new(&net)
                    .with_threads(threads)
                    .with_engine(choice)
                    .run(&specs)
                    .unwrap();
                prop_assert_eq!(batched.len(), specs.len());
                for (r, s) in batched.iter().zip(&specs) {
                    let fresh = match choice {
                        EngineChoice::Dense => DenseEngine.run(&net, &s.initial_spikes, &s.config),
                        EngineChoice::Event => EventEngine.run(&net, &s.initial_spikes, &s.config),
                        EngineChoice::Bitplane => {
                            BitplaneEngine.run(&net, &s.initial_spikes, &s.config)
                        }
                        EngineChoice::Parallel(e) => e.run(&net, &s.initial_spikes, &s.config),
                        EngineChoice::Partitioned { parts, threads } => {
                            PartitionedEngine::new(parts)
                                .with_threads(threads)
                                .run(&net, &s.initial_spikes, &s.config)
                        }
                        EngineChoice::Auto => unreachable!(),
                    }
                    .unwrap();
                    prop_assert_eq!(r, &fresh);
                }
            }
        }
    }

    /// Auto selection is an optimisation, not a semantic switch: whatever
    /// engine it resolves to must agree with the dense literal up to the
    /// documented `neuron_updates` difference.
    #[test]
    fn auto_choice_matches_dense_modulo_updates(spec in batch_spec()) {
        let (net, specs) = build(&spec);
        let batched = BatchRunner::new(&net).with_threads(2).run(&specs).unwrap();
        for (r, s) in batched.iter().zip(&specs) {
            let mut dense = DenseEngine.run(&net, &s.initial_spikes, &s.config).unwrap();
            dense.stats.neuron_updates = r.stats.neuron_updates;
            prop_assert_eq!(r, &dense);
        }
    }
}

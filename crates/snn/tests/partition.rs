//! Partitioned-execution edge cases and conservation laws.
//!
//! The differential harness (`engine_equivalence.rs`) pins the partitioned
//! engine bit-identical to the event engine on random networks; this file
//! covers the channel plumbing those nets may miss by construction —
//! empty partitions, partitions with zero cut edges, all-cut star
//! topologies, ring overflow into the spill path (sequential, and under
//! threaded-driver contention with two rings racing) — plus conservation
//! properties: channel traffic must equal the boundary-synapse share of
//! `SimStats::synaptic_deliveries`, and the plan's memory accounting must
//! cover the sum of its parts.

use proptest::prelude::*;
use sgl_snn::engine::{Engine, EventEngine, RunConfig, RunObserver};
use sgl_snn::partition::{CutStrategy, PartitionPlan, PartitionedEngine, RangePartitioner};
use sgl_snn::{LifParams, Network, NeuronId};

/// Observer that tallies `on_cut_traffic` per superstep — the per-tick
/// view the conservation proptest checks against `SimStats`.
#[derive(Default)]
struct CutTally {
    per_tick: Vec<(u64, u64)>, // (t, messages summed over channels)
    total: u64,
}

impl RunObserver for CutTally {
    fn on_cut_traffic(&mut self, t: u64, _from: u32, _to: u32, messages: u64) {
        self.total += messages;
        match self.per_tick.last_mut() {
            Some((last_t, sum)) if *last_t == t => *sum += messages,
            _ => self.per_tick.push((t, messages)),
        }
    }
}

fn star(n_leaves: usize, delay: u32) -> Network {
    let mut net = Network::new();
    let hub = net.add_neuron(LifParams::gate_at_least(1));
    let leaves = net.add_neurons(LifParams::gate_at_least(1), n_leaves);
    for &leaf in &leaves {
        net.connect(hub, leaf, 1.0, delay).unwrap();
    }
    net
}

/// Every leaf in another partition: with the hub alone in partition 0,
/// the whole fan-out is cut traffic.
#[test]
fn all_cut_star_routes_every_delivery_through_channels() {
    let net = star(40, 2);
    // Range split [hub | leaves...]: partition 0 = {hub}, rest = leaves.
    let plan = PartitionPlan::compile(&net, 41, &RangePartitioner).unwrap();
    assert_eq!(plan.cut_edge_count(), 40);
    let mono = EventEngine
        .run(&net, &[NeuronId(0)], &RunConfig::until_quiescent(10))
        .unwrap();
    let (part, stats) = plan
        .run_with_stats(&[NeuronId(0)], &RunConfig::until_quiescent(10))
        .unwrap();
    assert_eq!(mono, part);
    assert_eq!(stats.cut_messages, 40, "every delivery crossed a cut");
    assert_eq!(stats.channels.len(), 40, "one channel per reached leaf");
    assert_eq!(part.stats.synaptic_deliveries, 40);
}

/// A star wide enough to overflow the per-channel ring exercises the
/// spill path; order (and therefore the result) must survive.
#[test]
fn channel_spill_path_is_lossless_and_ordered() {
    // Two partitions, hub in 0, every leaf in 1: one channel carries the
    // entire fan-out. The ring caps at 16384 slots, so 20k leaves spill.
    let n_leaves = 20_000;
    let net = star(n_leaves, 3);
    let mut assignment = vec![1u32; n_leaves + 1];
    assignment[0] = 0;
    struct Fixed(Vec<u32>);
    impl sgl_snn::partition::Partitioner for Fixed {
        fn assign(&self, _net: &Network, _parts: usize) -> Vec<u32> {
            self.0.clone()
        }
    }
    let plan = PartitionPlan::compile(&net, 2, &Fixed(assignment)).unwrap();
    let cfg = RunConfig::until_quiescent(10);
    let mono = EventEngine.run(&net, &[NeuronId(0)], &cfg).unwrap();
    let (part, stats) = plan.run_with_stats(&[NeuronId(0)], &cfg).unwrap();
    assert_eq!(mono, part);
    assert_eq!(stats.cut_messages, n_leaves as u64);
    assert!(
        stats.spilled_messages > 0,
        "a 20k-wide cut must overflow the bounded ring"
    );
}

/// Two rings spilling concurrently while worker threads race: each hub
/// fires at t = 1 *inside* the threaded compute phase and overflows its
/// own channel (18k-wide fan-out vs the 16384-slot ring). Spill lists
/// are per-channel with a single producer each, so push order — and
/// bit-identity with the monolith — must survive the contention.
#[test]
fn threaded_spill_under_contention_is_lossless() {
    let n_leaves = 18_000;
    let mut net = Network::new();
    let driver0 = net.add_neuron(LifParams::gate_at_least(1));
    let hub0 = net.add_neuron(LifParams::gate_at_least(1));
    let driver1 = net.add_neuron(LifParams::gate_at_least(1));
    let hub1 = net.add_neuron(LifParams::gate_at_least(1));
    let leaves0 = net.add_neurons(LifParams::gate_at_least(1), n_leaves);
    let leaves1 = net.add_neurons(LifParams::gate_at_least(1), n_leaves);
    net.connect(driver0, hub0, 1.0, 1).unwrap();
    net.connect(driver1, hub1, 1.0, 1).unwrap();
    for &l in &leaves0 {
        net.connect(hub0, l, 1.0, 1).unwrap();
    }
    for &l in &leaves1 {
        net.connect(hub1, l, 1.0, 1).unwrap();
    }

    // p0 = {driver0, hub0}, p1 = {driver1, hub1}, p2 = hub0's leaves,
    // p3 = hub1's leaves: two disjoint producer/consumer channel pairs,
    // owned by different workers at every thread count below.
    let mut assignment = vec![0u32; net.neuron_count()];
    assignment[driver1.index()] = 1;
    assignment[hub1.index()] = 1;
    for &l in &leaves0 {
        assignment[l.index()] = 2;
    }
    for &l in &leaves1 {
        assignment[l.index()] = 3;
    }
    struct Fixed(Vec<u32>);
    impl sgl_snn::partition::Partitioner for Fixed {
        fn assign(&self, _net: &Network, _parts: usize) -> Vec<u32> {
            self.0.clone()
        }
    }
    let plan = PartitionPlan::compile(&net, 4, &Fixed(assignment)).unwrap();
    let cfg = RunConfig::until_quiescent(10);
    let mono = EventEngine.run(&net, &[driver0, driver1], &cfg).unwrap();
    for threads in [2, 4] {
        let (part, stats) = plan
            .run_with_stats_threaded(&[driver0, driver1], &cfg, threads)
            .unwrap();
        assert_eq!(mono, part, "threads = {threads}");
        assert_eq!(stats.threads, threads);
        assert_eq!(stats.cut_messages, 2 * n_leaves as u64);
        assert!(
            stats.spilled_messages > 0,
            "both 18k fan-outs must overflow the rings"
        );
        assert_eq!(stats.workers.len(), threads);
        let owned: u32 = stats.workers.iter().map(|w| w.partitions).sum();
        assert_eq!(owned, 4, "round-robin ownership covers every partition");
    }
}

/// Partitions that exist but own no neurons (parts > n) and partitions
/// with zero cut edges (disconnected clusters) both run cleanly.
#[test]
fn empty_partitions_and_zero_cut_partitions_run_clean() {
    // Two disconnected 3-chains; range split at 3 puts each chain wholly
    // in its own partition: two populated zero-cut partitions.
    let mut net = Network::new();
    let ids = net.add_neurons(LifParams::gate_at_least(1), 6);
    net.connect(ids[0], ids[1], 1.0, 1).unwrap();
    net.connect(ids[1], ids[2], 1.0, 1).unwrap();
    net.connect(ids[3], ids[4], 1.0, 1).unwrap();
    net.connect(ids[4], ids[5], 1.0, 1).unwrap();
    let cfg = RunConfig::until_quiescent(10);
    let mono = EventEngine.run(&net, &[ids[0], ids[3]], &cfg).unwrap();

    let plan = PartitionPlan::compile(&net, 2, &RangePartitioner).unwrap();
    assert_eq!(plan.cut_edge_count(), 0, "clusters align with the split");
    let (part, stats) = plan.run_with_stats(&[ids[0], ids[3]], &cfg).unwrap();
    assert_eq!(mono, part);
    assert_eq!(stats.cut_messages, 0);
    assert!(stats.channels.is_empty(), "no cut, no channels");

    // 12 partitions over 6 neurons: at least 6 are empty.
    let (part, stats) = PartitionedEngine::new(12)
        .run_with_stats(&net, &[ids[0], ids[3]], &cfg)
        .unwrap();
    assert_eq!(mono, part);
    assert_eq!(stats.parts, 12);
}

/// Satellite regression: the plan's memory accounting must cover the sum
/// of the sub-network accountings plus the channel rings, and compare
/// sanely against the monolithic build (sub-networks repartition the
/// neurons and intra synapses; only cut bookkeeping is extra).
#[test]
fn plan_memory_accounting_covers_subnets_and_channels() {
    let mut net = Network::new();
    let ids = net.add_neurons(LifParams::gate_at_least(1), 64);
    for i in 0..64usize {
        net.connect(ids[i], ids[(i * 7 + 1) % 64], 1.0, 1 + (i as u32 % 5))
            .unwrap();
        net.connect(ids[i], ids[(i * 3 + 2) % 64], -0.5, 1).unwrap();
    }
    net.freeze();
    for parts in [1, 2, 4, 8] {
        let plan = PartitionPlan::compile(&net, parts, &RangePartitioner).unwrap();
        let sub_sum: usize = (0..parts).map(|p| plan.subnet(p).memory_bytes()).sum();
        let total = plan.memory_bytes();
        assert!(
            total >= sub_sum + plan.channel_ring_bytes(),
            "parts = {parts}: {total} must cover subnets ({sub_sum}) + rings"
        );
        // Neuron and synapse conservation against the monolithic build.
        let sub_neurons: usize = (0..parts).map(|p| plan.subnet(p).neuron_count()).sum();
        let sub_syn: u64 = (0..parts)
            .map(|p| plan.subnet(p).synapse_count() as u64)
            .sum();
        assert_eq!(sub_neurons, net.neuron_count());
        assert_eq!(sub_syn + plan.cut_edge_count(), net.synapse_count() as u64);
        // Partitioning a net never accounts to less than the per-neuron /
        // per-synapse state it still holds: compare against a monolithic
        // lower bound built from the same counts.
        assert!(total >= net.neuron_count() * std::mem::size_of::<LifParams>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation law: summed per-tick channel traffic equals the
    /// boundary-synapse share of the run's `synaptic_deliveries` — i.e.
    /// Σ_fired cut_degree(src), with the intra share making up the rest.
    #[test]
    fn channel_traffic_equals_boundary_delivery_counts(
        edges in proptest::collection::vec((0usize..12, 0usize..12, 1u32..5), 1..40),
        stims in proptest::collection::vec(0usize..12, 1..4),
        parts in 2usize..5,
    ) {
        let mut net = Network::new();
        let ids = net.add_neurons(LifParams::gate_at_least(1), 12);
        for &(s, d, delay) in &edges {
            net.connect(ids[s], ids[d], 1.0, delay).unwrap();
        }
        let initial: Vec<NeuronId> = stims.iter().map(|&i| ids[i]).collect();
        let cfg = RunConfig::until_quiescent(50);

        let engine = PartitionedEngine::new(parts).with_strategy(CutStrategy::BfsGrow);
        let plan = engine.compile(&net).unwrap();
        let mut tally = CutTally::default();
        let (result, stats) = plan.run_observed(&initial, &cfg, &mut tally).unwrap();

        // Expected totals from the spike counts: each spike of neuron v
        // delivers out_degree(v) times, cut_degree(v) of them over
        // channels.
        let assignment = plan.assignment();
        let mut expected_cut = 0u64;
        let mut expected_total = 0u64;
        for (v, &count) in result.spike_counts.iter().enumerate() {
            let cut_deg = net
                .csr()
                .out(v)
                .iter()
                .filter(|s| assignment[s.target.index()] != assignment[v])
                .count() as u64;
            let out_deg = net.csr().out(v).len() as u64;
            expected_cut += u64::from(count) * cut_deg;
            expected_total += u64::from(count) * out_deg;
        }
        prop_assert_eq!(stats.cut_messages, expected_cut);
        prop_assert_eq!(tally.total, expected_cut,
            "observer per-tick traffic must sum to the channel counters");
        prop_assert_eq!(result.stats.synaptic_deliveries, expected_total);
        // And the run itself is still bit-identical to the monolith.
        let mono = EventEngine.run(&net, &initial, &cfg).unwrap();
        prop_assert_eq!(&mono, &result);
    }
}

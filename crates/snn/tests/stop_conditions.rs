//! Coverage for the remaining stop-condition and readout surfaces:
//! `AnyOf`, raster-based value reads, and Definition-3 output readout
//! through the terminal path.

use sgl_snn::encoding::{read_value_at, spikes_for_value};
use sgl_snn::engine::{DenseEngine, Engine, EventEngine, RunConfig, StopCondition, StopReason};
use sgl_snn::{LifParams, Network, NeuronId};

fn chain(n: usize, delay: u32) -> (Network, Vec<NeuronId>) {
    let mut net = Network::new();
    let ids = net.add_neurons(LifParams::gate_at_least(1), n);
    for w in ids.windows(2) {
        net.connect(w[0], w[1], 1.0, delay).unwrap();
    }
    (net, ids)
}

#[test]
fn any_of_stops_at_the_first_listed_spike() {
    let (net, ids) = chain(6, 2);
    let cfg = RunConfig {
        max_steps: 50,
        stop: StopCondition::AnyOf(vec![ids[3], ids[5]]),
        record_raster: false,
        strict: false,
    };
    for result in [
        EventEngine.run(&net, &[ids[0]], &cfg).unwrap(),
        DenseEngine.run(&net, &[ids[0]], &cfg).unwrap(),
    ] {
        assert_eq!(result.reason, StopReason::ConditionMet);
        assert_eq!(result.steps, 6); // ids[3] fires at t = 3 * 2
        assert_eq!(result.first_spikes[ids[3].index()], Some(6));
        assert_eq!(result.first_spikes[ids[5].index()], None);
    }
}

#[test]
fn any_of_with_unreachable_neuron_quiesces() {
    let (net, ids) = chain(3, 1);
    let isolated = {
        let mut net2 = net.clone();
        let x = net2.add_neuron(LifParams::gate_at_least(1));
        (net2, x)
    };
    let (net2, x) = isolated;
    let cfg = RunConfig {
        max_steps: 10,
        stop: StopCondition::AnyOf(vec![x]),
        record_raster: false,
        strict: false,
    };
    let r = EventEngine.run(&net2, &[ids[0]], &cfg).unwrap();
    // The chain quiesces long before the isolated neuron could ever fire.
    assert_eq!(r.reason, StopReason::Quiescent);
    assert_eq!(r.first_spikes[x.index()], None);
}

#[test]
fn unknown_stop_target_is_rejected() {
    let (net, ids) = chain(2, 1);
    let cfg = RunConfig {
        max_steps: 10,
        stop: StopCondition::AnyOf(vec![NeuronId(99)]),
        record_raster: false,
        strict: false,
    };
    assert!(EventEngine.run(&net, &[ids[0]], &cfg).is_err());
}

#[test]
fn read_value_at_decodes_bundles_mid_run() {
    // A 4-bit bundle that relays its pattern two steps later.
    let mut net = Network::new();
    let inputs = net.add_neurons(LifParams::gate_at_least(1), 4);
    let relays: Vec<NeuronId> = inputs
        .iter()
        .map(|&i| {
            let r = net.add_neuron(LifParams::gate_at_least(1));
            net.connect(i, r, 1.0, 2).unwrap();
            r
        })
        .collect();
    for value in [0u64, 5, 10, 15] {
        let init = spikes_for_value(&inputs, value);
        let result = EventEngine
            .run(&net, &init, &RunConfig::fixed(4).with_raster())
            .unwrap();
        assert_eq!(read_value_at(&result, &relays, 2), value, "value {value}");
        assert_eq!(read_value_at(&result, &relays, 1), 0, "nothing early");
    }
}

#[test]
fn output_bits_follow_the_terminal_readout() {
    // Two outputs; only one coincides with the terminal spike.
    let mut net = Network::new();
    let src = net.add_neuron(LifParams::gate_at_least(1));
    let o1 = net.add_neuron(LifParams::gate_at_least(1));
    let o2 = net.add_neuron(LifParams::gate_at_least(1));
    let term = net.add_neuron(LifParams::gate_at_least(1));
    net.connect(src, o1, 1.0, 3).unwrap();
    net.connect(src, o2, 1.0, 2).unwrap(); // fires early, not at T
    net.connect(src, term, 1.0, 3).unwrap();
    net.mark_output(o1);
    net.mark_output(o2);
    net.set_terminal(term);
    let r = EventEngine
        .run(&net, &[src], &RunConfig::until_terminal(10))
        .unwrap();
    assert_eq!(r.steps, 3);
    assert_eq!(r.output_bits(&net), vec![true, false]);
}

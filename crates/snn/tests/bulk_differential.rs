//! Differential harness for bulk compilation: a network built by
//! [`NetworkBuilder`] from a random edge list must be indistinguishable
//! from one grown edge-by-edge through [`Network::connect`] — identical
//! CSR layout (same synapse order per source, byte for byte) and
//! bit-identical [`RunResult`]s on every engine.
//!
//! This is the guarantee that lets every mass construction site (the §3
//! SSSP net, the layered k-hop net, the circuit library, the serve cold
//! path) switch to the bulk path as a pure optimisation: the counting
//! sort is stable per source, so no observable ordering (and hence no
//! FP-accumulation order) changes.

use proptest::prelude::*;
use sgl_snn::{
    engine::{BitplaneEngine, DenseEngine, Engine, EventEngine, ParallelDenseEngine, RunConfig},
    LifParams, Network, NetworkBuilder, NeuronId,
};

/// A compact, shrinkable description of a random network and stimulus.
#[derive(Debug, Clone)]
struct NetSpec {
    neurons: Vec<(f64, u8)>, // (threshold, kind: 0 integrator, 1 gate, 2 tau 0.5)
    synapses: Vec<(usize, usize, f64, u32)>,
    stimulus: Vec<usize>,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    let n_range = 2usize..12;
    n_range.prop_flat_map(|n| {
        let neurons = proptest::collection::vec((0.5f64..4.0, 0u8..3), n);
        let synapse = (0..n, 0..n, -2.5f64..3.5, 1u32..9);
        let synapses = proptest::collection::vec(synapse, 1..40);
        let stimulus = proptest::collection::vec(0..n, 1..4);
        (neurons, synapses, stimulus).prop_map(|(neurons, synapses, stimulus)| NetSpec {
            neurons,
            synapses,
            stimulus,
        })
    })
}

fn params_of(threshold: f64, kind: u8) -> LifParams {
    match kind {
        0 => LifParams::integrator(threshold),
        1 => LifParams::gate(threshold),
        _ => LifParams {
            v_reset: 0.0,
            v_threshold: threshold,
            decay: 0.5,
        },
    }
}

/// Grows the network edge-by-edge (the incremental reference).
fn build_incremental(spec: &NetSpec) -> Network {
    let mut net = Network::new();
    let ids: Vec<NeuronId> = spec
        .neurons
        .iter()
        .map(|&(t, k)| net.add_neuron(params_of(t, k)))
        .collect();
    for &(s, d, w, delay) in &spec.synapses {
        net.connect(ids[s], ids[d], w, delay).unwrap();
    }
    net.mark_input(ids[0]);
    net.mark_output(ids[spec.neurons.len() - 1]);
    net.set_terminal(ids[spec.neurons.len() - 1]);
    net
}

/// Stages the same neurons and edges, in the same order, through the bulk
/// compiler.
fn build_bulk(spec: &NetSpec) -> Network {
    let mut b = NetworkBuilder::with_capacity(spec.neurons.len(), spec.synapses.len());
    let ids: Vec<NeuronId> = spec
        .neurons
        .iter()
        .map(|&(t, k)| b.add_neuron(params_of(t, k)))
        .collect();
    for &(s, d, w, delay) in &spec.synapses {
        b.connect(ids[s], ids[d], w, delay);
    }
    b.mark_input(ids[0]);
    b.mark_output(ids[spec.neurons.len() - 1]);
    b.set_terminal(ids[spec.neurons.len() - 1]);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structural identity: the bulk CSR is byte-for-byte the incremental
    /// CSR (same per-source synapse order), and every metadata accessor
    /// agrees.
    #[test]
    fn bulk_csr_is_bit_identical_to_incremental(spec in net_spec()) {
        let inc = build_incremental(&spec);
        let bulk = build_bulk(&spec);
        prop_assert_eq!(bulk.csr(), inc.csr());
        prop_assert_eq!(bulk.params_slice(), inc.params_slice());
        prop_assert_eq!(bulk.neuron_count(), inc.neuron_count());
        prop_assert_eq!(bulk.synapse_count(), inc.synapse_count());
        prop_assert_eq!(bulk.max_delay(), inc.max_delay());
        prop_assert_eq!(bulk.inputs(), inc.inputs());
        prop_assert_eq!(bulk.outputs(), inc.outputs());
        prop_assert_eq!(bulk.terminal(), inc.terminal());
        prop_assert_eq!(bulk.in_degrees(), inc.in_degrees());
        prop_assert_eq!(bulk.max_abs_weight(), inc.max_abs_weight());
        prop_assert!(bulk.is_frozen());
        prop_assert!(!inc.is_frozen());
        // The frozen side must hold strictly less memory than the thawed
        // side once the incremental CSR is materialised (no double store).
        let _ = inc.csr();
        prop_assert!(bulk.memory_bytes() < inc.memory_bytes());
    }

    /// Behavioral identity: the same stimulus produces bit-identical
    /// results on both constructions, for every engine. Continuous
    /// weights make this sensitive to any FP-accumulation-order change.
    #[test]
    fn bulk_runs_bit_identical_on_all_engines(spec in net_spec()) {
        let inc = build_incremental(&spec);
        let bulk = build_bulk(&spec);
        let initial: Vec<NeuronId> = spec.stimulus.iter().map(|&s| NeuronId(s as u32)).collect();
        for config in [RunConfig::fixed(60).with_raster(), RunConfig::until_quiescent(300).with_raster()] {
            let parallel = ParallelDenseEngine { threads: 3, min_chunk: 1 };
            let d_inc = DenseEngine.run(&inc, &initial, &config).unwrap();
            let d_bulk = DenseEngine.run(&bulk, &initial, &config).unwrap();
            prop_assert_eq!(d_inc, d_bulk);
            let e_inc = EventEngine.run(&inc, &initial, &config).unwrap();
            let e_bulk = EventEngine.run(&bulk, &initial, &config).unwrap();
            prop_assert_eq!(e_inc, e_bulk);
            let p_inc = parallel.run(&inc, &initial, &config).unwrap();
            let p_bulk = parallel.run(&bulk, &initial, &config).unwrap();
            prop_assert_eq!(p_inc, p_bulk);
            let b_inc = BitplaneEngine.run(&inc, &initial, &config).unwrap();
            let b_bulk = BitplaneEngine.run(&bulk, &initial, &config).unwrap();
            prop_assert_eq!(b_inc, b_bulk);
        }
    }

    /// Freezing an incrementally-built network is also invisible to the
    /// engines: frozen and thawed forms answer identically.
    #[test]
    fn freeze_is_observationally_invisible(spec in net_spec()) {
        let mut frozen = build_incremental(&spec);
        frozen.freeze();
        let reference = build_incremental(&spec);
        let initial: Vec<NeuronId> = spec.stimulus.iter().map(|&s| NeuronId(s as u32)).collect();
        let config = RunConfig::fixed(60).with_raster();
        let a = EventEngine.run(&frozen, &initial, &config).unwrap();
        let b = EventEngine.run(&reference, &initial, &config).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(frozen.csr(), reference.csr());
    }
}

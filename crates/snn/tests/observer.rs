//! Reconciliation tests for the observer protocol: the per-step series a
//! [`TimeSeriesObserver`] collects must sum *exactly* to the `SimStats`
//! totals of the same run, on all three engines, and the scheduler /
//! barrier side channels must reflect what the engines actually did.

use sgl_snn::engine::{
    DenseEngine, EventEngine, ParallelDenseEngine, RunConfig, TimeSeriesObserver,
};
use sgl_snn::{LifParams, Network, NeuronId};

/// A weighted chain with gaps: 0 -> 1 -> 2 -> 3 with delays 3, 1, 5, plus
/// a shortcut 0 -> 2 (delay 7) that arrives after the chain already fired
/// neuron 2, so it only adds current.
fn chain_net() -> (Network, Vec<NeuronId>) {
    let mut net = Network::new();
    let ids = net.add_neurons(LifParams::gate_at_least(1), 4);
    net.connect(ids[0], ids[1], 1.0, 3).unwrap();
    net.connect(ids[1], ids[2], 1.0, 1).unwrap();
    net.connect(ids[2], ids[3], 1.0, 5).unwrap();
    net.connect(ids[0], ids[2], 1.0, 7).unwrap();
    (net, ids)
}

#[test]
fn series_reconcile_with_sim_stats_on_all_engines() {
    let (net, ids) = chain_net();
    let cfg = RunConfig::until_quiescent(64);
    let initial = [ids[0]];

    let runs: [(&str, _); 3] = [
        ("dense", {
            let mut obs = TimeSeriesObserver::new();
            let r = DenseEngine
                .run_observed(&net, &initial, &cfg, &mut obs)
                .unwrap();
            (r, obs)
        }),
        ("event", {
            let mut obs = TimeSeriesObserver::new();
            let r = EventEngine
                .run_observed(&net, &initial, &cfg, &mut obs)
                .unwrap();
            (r, obs)
        }),
        ("parallel", {
            let mut obs = TimeSeriesObserver::new();
            let r = ParallelDenseEngine {
                threads: 2,
                min_chunk: 1,
            }
            .run_observed(&net, &initial, &cfg, &mut obs)
            .unwrap();
            (r, obs)
        }),
    ];

    for (name, (result, obs)) in &runs {
        assert_eq!(
            obs.total_spikes(),
            result.stats.spike_events,
            "{name}: spikes"
        );
        assert_eq!(
            obs.total_deliveries(),
            result.stats.synaptic_deliveries,
            "{name}: deliveries"
        );
        assert_eq!(
            obs.total_updates(),
            result.stats.neuron_updates,
            "{name}: updates"
        );
        assert_eq!(obs.final_step, result.steps, "{name}: final step");
        let finished = obs.finished.expect("on_finish not called");
        assert_eq!(
            finished.spikes, result.stats.spike_events,
            "{name}: on_finish spikes"
        );
        assert_eq!(
            finished.deliveries, result.stats.synaptic_deliveries,
            "{name}: on_finish deliveries"
        );
        assert_eq!(
            finished.updates, result.stats.neuron_updates,
            "{name}: on_finish updates"
        );
        // Times start at the induced-spike step and are strictly increasing.
        assert_eq!(obs.times.first(), Some(&0), "{name}: first recorded step");
        assert!(
            obs.times.windows(2).all(|w| w[0] < w[1]),
            "{name}: times not strictly increasing: {:?}",
            obs.times
        );
        // One scheduler snapshot per recorded step, on every engine.
        assert_eq!(
            obs.wheel_in_flight.len(),
            obs.len(),
            "{name}: scheduler series"
        );
        // The run ends quiescent: nothing left in flight.
        assert_eq!(
            obs.wheel_in_flight.last(),
            Some(&0),
            "{name}: residual in-flight work"
        );
    }

    // The event engine records only event times; the dense engines record
    // every step up to termination.
    let (dense_result, dense_obs) = &runs[0].1;
    let (_, event_obs) = &runs[1].1;
    let expected: Vec<u64> = (0..=dense_result.steps).collect();
    assert_eq!(dense_obs.times, expected);
    assert!(
        event_obs.len() < dense_obs.len(),
        "event series should be sparse"
    );
}

#[test]
fn overflow_scheduling_is_counted() {
    // A delay beyond the wheel horizon forces the overflow (ordered-map)
    // path, which the scheduler snapshot reports as cumulative hits.
    let mut net = Network::new();
    let ids = net.add_neurons(LifParams::gate_at_least(1), 2);
    net.connect(ids[0], ids[1], 1.0, 5000).unwrap();
    let cfg = RunConfig::until_quiescent(6000);
    let mut obs = TimeSeriesObserver::new();
    let r = EventEngine
        .run_observed(&net, &[ids[0]], &cfg, &mut obs)
        .unwrap();
    assert_eq!(r.first_spikes[1], Some(5000));
    assert_eq!(obs.scheduler.overflow_hits, 1);
    // The in-flight gauge saw the parked delivery before it drained.
    assert!(obs.wheel_in_flight.iter().any(|&x| x > 0));
}

#[test]
fn barrier_waits_only_from_the_parallel_coordinator() {
    let (net, ids) = chain_net();
    let cfg = RunConfig::until_quiescent(64);

    let mut par = TimeSeriesObserver::new();
    ParallelDenseEngine {
        threads: 3,
        min_chunk: 1,
    }
    .run_observed(&net, &[ids[0]], &cfg, &mut par)
    .unwrap();
    assert!(
        par.barrier_wait.count() > 0,
        "coordinator never timed a barrier"
    );
    assert!(par.barrier_wait_total_ns > 0);

    // threads == 1 delegates to the dense engine: no barriers exist.
    let mut single = TimeSeriesObserver::new();
    let one = ParallelDenseEngine {
        threads: 1,
        min_chunk: 1,
    }
    .run_observed(&net, &[ids[0]], &cfg, &mut single)
    .unwrap();
    assert_eq!(single.barrier_wait.count(), 0);
    assert!(
        single.finished.is_some(),
        "on_finish must fire exactly once via delegation"
    );
    assert_eq!(single.total_spikes(), one.stats.spike_events);

    let mut dense = TimeSeriesObserver::new();
    DenseEngine
        .run_observed(&net, &[ids[0]], &cfg, &mut dense)
        .unwrap();
    assert_eq!(dense.barrier_wait.count(), 0);
}

#[test]
fn spike_batches_cover_all_deliveries() {
    // `on_spike_batch` reports scheduler drains; across a full quiescent
    // run every routed delivery is eventually drained, so batch sums must
    // equal the delivery total. A bespoke observer checks the hook
    // directly rather than through TimeSeriesObserver.
    use sgl_snn::engine::{RunObserver, StepRecord};

    #[derive(Default)]
    struct BatchSum {
        drained: u64,
        routed: u64,
    }
    impl RunObserver for BatchSum {
        fn on_spike_batch(&mut self, _t: u64, deliveries: u64) {
            self.drained += deliveries;
        }
        fn on_step(&mut self, _t: u64, step: StepRecord) {
            self.routed += step.deliveries;
        }
    }

    let (net, ids) = chain_net();
    let cfg = RunConfig::until_quiescent(64);
    for engine_run in [
        |net: &Network, initial: &[NeuronId], cfg: &RunConfig, obs: &mut BatchSum| {
            DenseEngine.run_observed(net, initial, cfg, obs).map(|_| ())
        },
        |net: &Network, initial: &[NeuronId], cfg: &RunConfig, obs: &mut BatchSum| {
            EventEngine.run_observed(net, initial, cfg, obs).map(|_| ())
        },
    ] {
        let mut obs = BatchSum::default();
        engine_run(&net, &[ids[0]], &cfg, &mut obs).unwrap();
        assert!(obs.routed > 0, "chain produced no deliveries");
        assert_eq!(obs.drained, obs.routed);
    }
}

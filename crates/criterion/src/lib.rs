//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this path crate
//! provides the API subset the workspace's benches use (`benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, the `criterion_group!`/
//! `criterion_main!` macros) backed by a small wall-clock harness:
//! auto-calibrated batching, a warm-up pass, then `sample_size` samples
//! whose median/min/mean are printed per benchmark.
//!
//! Running a bench target with `--test` (what `cargo test --benches` does)
//! skips measurement entirely and executes each closure once, so benches
//! double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One timed closure invocation context.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Filled by `iter`: per-sample mean duration of one iteration.
    samples: Vec<Duration>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    SmokeTest,
}

impl Bencher {
    /// Times `f`, storing samples for the report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::SmokeTest {
            black_box(f());
            return;
        }
        // Calibrate: how many iterations fit in ~5 ms?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        // Warm-up.
        for _ in 0..per_sample.min(16) {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed() / per_sample);
        }
    }
}

/// Identifies one benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.criterion.report(&self.name, &id.id, &b.samples);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        self.criterion.report(&self.name, &id.id, &b.samples);
        self
    }

    /// Ends the group (prints nothing; reports are emitted per benchmark).
    pub fn finish(self) {}
}

/// The harness entry point.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` passes `--test`; `cargo bench` passes
        // `--bench`. In test mode, run each closure once and skip timing.
        let smoke = std::env::args().any(|a| a == "--test");
        Self {
            mode: if smoke {
                Mode::SmokeTest
            } else {
                Mode::Measure
            },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a standalone benchmark (its own single-entry group).
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.mode,
            sample_size: 100,
            samples: Vec::new(),
        };
        f(&mut b);
        self.report("", name, &b.samples);
        self
    }

    fn report(&self, group: &str, id: &str, samples: &[Duration]) {
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if self.mode == Mode::SmokeTest {
            println!("{full}: ok (smoke test, not timed)");
            return;
        }
        if samples.is_empty() {
            println!("{full}: no samples (Bencher::iter never called)");
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{full}: median {} min {} mean {} ({} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(mean),
            sorted.len(),
        );
        append_json_line(group, id, median, min, mean, sorted.len());
    }
}

/// When `SGL_BENCH_JSON` names a file, appends one JSON line per measured
/// benchmark (`{"group":..,"id":..,"median_ns":..,...}`) so CI can diff
/// runs against a committed baseline. Hand-formatted: this shim must stay
/// dependency-free so it can be swapped for the real criterion crate.
fn append_json_line(
    group: &str,
    id: &str,
    median: Duration,
    min: Duration,
    mean: Duration,
    n: usize,
) {
    let Some(path) = std::env::var_os("SGL_BENCH_JSON") else {
        return;
    };
    let line = format!(
        "{{\"group\":\"{}\",\"id\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"mean_ns\":{},\"samples\":{}}}\n",
        escape(group),
        escape(id),
        median.as_nanos(),
        min.as_nanos(),
        mean.as_nanos(),
        n,
    );
    let r = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = r {
        eprintln!("SGL_BENCH_JSON: cannot append to {path:?}: {e}");
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("spin", 8), &8u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).map(black_box).sum::<u64>()
            });
        });
        group.finish();
        assert!(runs > 0, "closure never executed");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::SmokeTest,
        };
        let mut count = 0u32;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn json_line_appends_to_env_path() {
        let path = std::env::temp_dir().join(format!("sgl_shim_json_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("SGL_BENCH_JSON", &path);
        append_json_line(
            "g",
            "id/64",
            Duration::from_nanos(1500),
            Duration::from_nanos(1000),
            Duration::from_nanos(1600),
            5,
        );
        std::env::remove_var("SGL_BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(
            text.contains(
                r#"{"group":"g","id":"id/64","median_ns":1500,"min_ns":1000,"mean_ns":1600,"samples":5}"#
            ),
            "unexpected file contents: {text}"
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.000 us");
        assert_eq!(fmt_duration(Duration::from_millis(40)), "40.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
